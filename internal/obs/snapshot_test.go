package obs

import (
	"sync"
	"testing"
)

// TestHistogramSnapshotNotTorn hammers Observe while snapshotting.
// Snapshot reads count, then sum, then buckets — the reverse of
// Observe's write order — so under sequentially consistent atomics a
// concurrent snapshot can over-read buckets but never under-read them:
// Count <= sum(Buckets) must hold in every observation, and everything
// must be exact once the writers quiesce. Before the read-order fix,
// Snapshot read buckets first and could publish Count > sum(Buckets) —
// a hit-rate denominator larger than its numerator breakdown.
func TestHistogramSnapshotNotTorn(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("torn_ns", "torn-read hammer", []int64{8, 64, 512})

	const writers = 4
	const perWriter = 20000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.ObserveTraced(int64(i%1024), uint64(w+1))
			}
		}(w)
	}

	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 2000; i++ {
			s := h.Snapshot()
			var inBuckets int64
			for _, b := range s.Buckets {
				inBuckets += b
			}
			if s.Count > inBuckets {
				t.Errorf("torn snapshot: count %d > bucketed %d", s.Count, inBuckets)
				return
			}
		}
	}()
	wg.Wait()
	<-readerDone

	s := h.Snapshot()
	if want := int64(writers * perWriter); s.Count != want {
		t.Fatalf("quiesced count = %d, want %d", s.Count, want)
	}
	var inBuckets int64
	for _, b := range s.Buckets {
		inBuckets += b
	}
	if inBuckets != s.Count {
		t.Fatalf("quiesced buckets sum to %d, count %d", inBuckets, s.Count)
	}
	if s.ExemplarVal != 1023 || s.ExemplarTrace == 0 {
		t.Errorf("exemplar = %d/trace %x, want max observation 1023 with a trace id",
			s.ExemplarVal, s.ExemplarTrace)
	}
}
