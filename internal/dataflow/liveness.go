package dataflow

import (
	"compreuse/internal/cfg"
)

// LiveSets holds per-node liveness facts.
type LiveSets struct {
	In  SymSet
	Out SymSet
}

// Liveness runs backward live-variable analysis over g:
//
//	LiveOut(n) = ∪ LiveIn(succ)
//	LiveIn(n)  = Use(n) ∪ (LiveOut(n) − Def(n))
//
// Only strong defs kill; MayDefs do not. extern seeds LiveOut(Exit) with
// symbols live beyond the graph (e.g. globals read elsewhere in the
// program, or the function's return flow).
func (e *Effects) Liveness(g *cfg.Graph, extern SymSet) map[*cfg.Node]*LiveSets {
	facts := make(map[*cfg.Node]*LiveSets, len(g.Nodes))
	eff := make(map[*cfg.Node]*NodeEffects, len(g.Nodes))
	for _, n := range g.Nodes {
		facts[n] = &LiveSets{In: SymSet{}, Out: SymSet{}}
		eff[n] = e.NodeEffectsOf(n)
	}
	if extern != nil {
		facts[g.Exit].Out.AddAll(extern)
		facts[g.Exit].In.AddAll(extern)
	}
	// Iterate in postorder (reverse of RPO) until fixpoint.
	order := g.ReversePostorder()
	for changed := true; changed; {
		changed = false
		for i := len(order) - 1; i >= 0; i-- {
			n := order[i]
			f := facts[n]
			for _, s := range n.Succs {
				if f.Out.AddAll(facts[s].In) {
					changed = true
				}
			}
			// In = Use ∪ (Out − Def)
			ne := eff[n]
			for sym := range ne.Use {
				if f.In.Add(sym) {
					changed = true
				}
			}
			for sym := range f.Out {
				if !ne.Def[sym] {
					if f.In.Add(sym) {
						changed = true
					}
				}
			}
		}
	}
	return facts
}

// UpwardExposed computes the upward-exposed reads of a code segment whose
// CFG is g (paper §2.1: "the inputs of a code segment are those variables
// or array elements that have upward-exposed reads in the code segment").
// A symbol is upward-exposed if some path from the segment entry reaches a
// read of it before any strong def of it inside the segment.
//
// The result is exactly the segment's input candidate set (before the
// invariance filtering of §2.4).
func (e *Effects) UpwardExposed(g *cfg.Graph) SymSet {
	// This is liveness restricted to the segment with nothing live-out:
	// UEin(n) = Use(n) ∪ (UEout(n) − Def(n)); answer = UEin(entry).
	facts := e.Liveness(g, nil)
	return facts[g.Entry].In.Clone()
}

// SegmentOutputs computes the output variables of a segment: symbols the
// segment may define that are live after it. liveAfter is the live set at
// the segment's exit point in the enclosing context (from a Liveness run
// over the enclosing function plus interprocedural liveness of globals).
func (e *Effects) SegmentOutputs(g *cfg.Graph, liveAfter SymSet) SymSet {
	defs := SymSet{}
	for _, n := range g.Nodes {
		ne := e.NodeEffectsOf(n)
		defs.AddAll(ne.Def)
		defs.AddAll(ne.MayDef)
	}
	out := SymSet{}
	for sym := range defs {
		if liveAfter[sym] {
			out.Add(sym)
		}
	}
	return out
}
