// Package dataflow implements the data-flow analyses the reuse scheme
// depends on (Ding & Li §2.1, §3.1): interprocedural mod/ref effect
// summaries, liveness, upward-exposed reads over code-segment CFGs, and
// def-use chains whose definitions and uses may sit in different
// procedures (via globals and pointers).
package dataflow

import (
	"sort"

	"compreuse/internal/callgraph"
	"compreuse/internal/cfg"
	"compreuse/internal/minic"
	"compreuse/internal/pointer"
)

// SymSet is a set of program symbols.
type SymSet map[*minic.Symbol]bool

// Add inserts sym and reports whether it was new.
func (s SymSet) Add(sym *minic.Symbol) bool {
	if s[sym] {
		return false
	}
	s[sym] = true
	return true
}

// AddAll inserts every member of o and reports whether anything changed.
func (s SymSet) AddAll(o SymSet) bool {
	changed := false
	for sym := range o {
		if s.Add(sym) {
			changed = true
		}
	}
	return changed
}

// Clone copies the set.
func (s SymSet) Clone() SymSet {
	c := make(SymSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// Sorted returns the members sorted by (name, kind) for stable output.
func (s SymSet) Sorted() []*minic.Symbol {
	out := make([]*minic.Symbol, 0, len(s))
	for sym := range s {
		out = append(out, sym)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// ModRef summarizes a function's externally visible effects.
type ModRef struct {
	// Mod is the set of symbols the function (transitively) may write,
	// excluding its own non-escaping locals.
	Mod SymSet
	// Ref is the set it may read, same exclusion.
	Ref SymSet
}

// Effects holds mod/ref summaries for every function plus the analyses
// they were computed from.
type Effects struct {
	Prog *minic.Program
	Pts  *pointer.Analysis
	CG   *callgraph.Graph
	fns  map[*minic.FuncDecl]*ModRef
}

// FuncModRef returns fn's summary (empty summary for unknown functions).
func (e *Effects) FuncModRef(fn *minic.FuncDecl) *ModRef {
	if mr, ok := e.fns[fn]; ok {
		return mr
	}
	return &ModRef{Mod: SymSet{}, Ref: SymSet{}}
}

// visible reports whether an effect on sym inside fn is visible outside fn.
func visible(sym *minic.Symbol, fn *minic.FuncDecl) bool {
	if sym == nil {
		return false
	}
	switch sym.Kind {
	case minic.SymGlobal, minic.SymFunc:
		return true
	default:
		// A local or parameter of another function is reachable only via
		// pointers, hence visible; fn's own locals are visible only when
		// their address escapes.
		if sym.Func != fn {
			return true
		}
		return sym.AddrTaken
	}
}

// ComputeEffects builds the interprocedural mod/ref summaries by iterating
// direct effects plus callee summaries to a fixpoint over the call graph.
func ComputeEffects(prog *minic.Program, pts *pointer.Analysis, cg *callgraph.Graph) *Effects {
	e := &Effects{Prog: prog, Pts: pts, CG: cg, fns: map[*minic.FuncDecl]*ModRef{}}
	for _, fn := range prog.Funcs {
		e.fns[fn] = &ModRef{Mod: SymSet{}, Ref: SymSet{}}
	}
	// Direct effects.
	for _, fn := range prog.Funcs {
		if fn.Body == nil {
			continue
		}
		mr := e.fns[fn]
		direct := e.directEffects(fn)
		for sym := range direct.Mod {
			if visible(sym, fn) {
				mr.Mod.Add(sym)
			}
		}
		for sym := range direct.Ref {
			if visible(sym, fn) {
				mr.Ref.Add(sym)
			}
		}
	}
	// Transitive closure over the call graph.
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			mr := e.fns[fn]
			for _, callee := range cg.Callees(fn) {
				cmr := e.fns[callee]
				for sym := range cmr.Mod {
					if visible(sym, fn) && mr.Mod.Add(sym) {
						changed = true
					}
				}
				for sym := range cmr.Ref {
					if visible(sym, fn) && mr.Ref.Add(sym) {
						changed = true
					}
				}
			}
		}
	}
	return e
}

// directEffects collects fn's own reads/writes by aggregating the per-node
// facts over the function CFG (so pure store targets do not count as
// reads). Call-site effects are folded in later by the transitive-closure
// pass, so the still-empty callee summaries consulted here are harmless.
func (e *Effects) directEffects(fn *minic.FuncDecl) *ModRef {
	mr := &ModRef{Mod: SymSet{}, Ref: SymSet{}}
	g := cfg.Build(fn)
	for _, n := range g.Nodes {
		ne := e.NodeEffectsOf(n)
		mr.Ref.AddAll(ne.Use)
		mr.Mod.AddAll(ne.Def)
		mr.Mod.AddAll(ne.MayDef)
	}
	return mr
}

// derefEffect adds the points-to set of pointer expression p.
func (e *Effects) derefEffect(p minic.Expr, set SymSet) {
	for _, sym := range e.pointees(p) {
		set.Add(sym)
	}
}

// indexBaseEffect adds the object(s) x[i] may touch.
func (e *Effects) indexBaseEffect(ix *minic.Index, set SymSet) {
	if id, ok := ix.X.(*minic.Ident); ok && id.Sym != nil {
		if _, isArr := id.Sym.Type.(*minic.Array); isArr {
			set.Add(id.Sym)
			return
		}
		// Pointer base: pts(p).
		for _, sym := range e.Pts.PointsTo(id.Sym) {
			set.Add(sym)
		}
		return
	}
	// Complex base (nested index, call result...): use the root idents.
	for _, id := range minic.Idents(ix.X) {
		if id.Sym == nil || id.Sym.Kind == minic.SymFunc {
			continue
		}
		if _, isArr := id.Sym.Type.(*minic.Array); isArr {
			set.Add(id.Sym)
		}
		for _, sym := range e.Pts.PointsTo(id.Sym) {
			set.Add(sym)
		}
	}
}

// pointees resolves the variables a pointer-valued expression may
// designate.
func (e *Effects) pointees(p minic.Expr) []*minic.Symbol {
	switch p := p.(type) {
	case *minic.Ident:
		if p.Sym == nil {
			return nil
		}
		if _, isArr := p.Sym.Type.(*minic.Array); isArr {
			return []*minic.Symbol{p.Sym}
		}
		return e.Pts.PointsTo(p.Sym)
	case *minic.Unary:
		if p.Op == minic.Amp {
			if id, ok := p.X.(*minic.Ident); ok && id.Sym != nil {
				return []*minic.Symbol{id.Sym}
			}
		}
		if p.Op == minic.Star {
			// **q: collect pointees of pointees.
			var out []*minic.Symbol
			for _, mid := range e.pointees(p.X) {
				out = append(out, e.Pts.PointsTo(mid)...)
			}
			return out
		}
	case *minic.Binary:
		// Pointer arithmetic: targets of either side.
		return append(e.pointees(p.X), e.pointees(p.Y)...)
	case *minic.Cast:
		return e.pointees(p.X)
	}
	// Fallback: all pointees of any identifier inside.
	var out []*minic.Symbol
	for _, id := range minic.Idents(p) {
		if id.Sym != nil && id.Sym.Kind != minic.SymFunc {
			out = append(out, e.Pts.PointsTo(id.Sym)...)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Per-CFG-node use/def sets

// NodeEffects are the data-flow facts of one CFG node.
type NodeEffects struct {
	// Use is every symbol the node may read.
	Use SymSet
	// Def is the set of strongly (definitely, killing) defined symbols.
	Def SymSet
	// MayDef is the set of possibly-defined symbols (array elements,
	// pointer stores, callee mods): gen without kill.
	MayDef SymSet
}

// NodeEffectsOf computes use/def/maydef facts for a CFG node.
func (e *Effects) NodeEffectsOf(n *cfg.Node) *NodeEffects {
	ne := &NodeEffects{Use: SymSet{}, Def: SymSet{}, MayDef: SymSet{}}
	switch n.Kind {
	case cfg.NEntry, cfg.NExit, cfg.NJoin:
		return ne
	case cfg.NCond, cfg.NPost:
		e.exprFacts(n.Expr, ne)
		return ne
	}
	switch s := n.Stmt.(type) {
	case *minic.DeclStmt:
		for _, d := range s.Decls {
			if d.Init != nil {
				e.exprFacts(d.Init, ne)
				ne.Def.Add(d.Sym)
			}
			if d.InitList != nil {
				for _, x := range d.InitList {
					e.exprFacts(x, ne)
				}
				ne.Def.Add(d.Sym) // whole-array init is a strong def
			}
		}
	case *minic.ExprStmt:
		e.exprFacts(s.X, ne)
	case *minic.ReturnStmt:
		if s.X != nil {
			e.exprFacts(s.X, ne)
		}
	case *minic.ReuseRegion:
		for _, in := range s.Inputs {
			e.exprFacts(in, ne)
		}
		for _, out := range s.Outputs {
			e.writeFacts(out, ne, true)
		}
	case *minic.BreakStmt, *minic.ContinueStmt, *minic.EmptyStmt:
	}
	return ne
}

// exprFacts walks an expression collecting reads, writes and call effects.
func (e *Effects) exprFacts(x minic.Expr, ne *NodeEffects) {
	switch x := x.(type) {
	case nil:
		return
	case *minic.IntLit, *minic.FloatLit, *minic.StrLit, *minic.SizeofExpr:
		return
	case *minic.Ident:
		if x.Sym != nil && x.Sym.Kind != minic.SymFunc {
			ne.Use.Add(x.Sym)
		}
	case *minic.Unary:
		if x.Op == minic.Star {
			e.exprFacts(x.X, ne)
			for _, sym := range e.pointees(x.X) {
				ne.Use.Add(sym)
			}
			return
		}
		if x.Op == minic.Amp {
			// Taking an address is not a read of the object, but the
			// base expression's index computations are evaluated.
			e.addrFacts(x.X, ne)
			return
		}
		e.exprFacts(x.X, ne)
	case *minic.IncDec:
		e.writeFacts(x.X, ne, false)
		e.exprFacts(x.X, ne)
	case *minic.Binary:
		e.exprFacts(x.X, ne)
		e.exprFacts(x.Y, ne)
	case *minic.AssignExpr:
		e.exprFacts(x.RHS, ne)
		strong := x.Op == minic.Assign
		e.writeFacts(x.LHS, ne, strong)
		if !strong {
			e.exprFacts(x.LHS, ne) // compound assignment reads the target
		} else {
			// Index/deref targets still evaluate their address parts.
			e.addrFacts(x.LHS, ne)
		}
	case *minic.Cond:
		e.exprFacts(x.Cond, ne)
		e.exprFacts(x.Then, ne)
		e.exprFacts(x.Else, ne)
	case *minic.Call:
		for _, a := range x.Args {
			e.exprFacts(a, ne)
		}
		if id, ok := x.Fun.(*minic.Ident); ok && id.Sym != nil && id.Sym.Kind == minic.SymFunc {
			// Direct call (or builtin: no effects).
			if id.Sym.FuncDecl != nil {
				mr := e.FuncModRef(id.Sym.FuncDecl)
				ne.Use.AddAll(mr.Ref)
				ne.MayDef.AddAll(mr.Mod)
			}
			return
		}
		e.exprFacts(x.Fun, ne)
		for _, callee := range e.Pts.CallTargets(x) {
			mr := e.FuncModRef(callee)
			ne.Use.AddAll(mr.Ref)
			ne.MayDef.AddAll(mr.Mod)
		}
	case *minic.Index:
		e.exprFacts(x.X, ne)
		e.exprFacts(x.Idx, ne)
		e.indexBaseEffect(x, ne.Use)
	case *minic.FieldExpr:
		if x.Arrow {
			e.exprFacts(x.X, ne)
			e.derefEffect(x.X, ne.Use)
		} else {
			e.exprFacts(x.X, ne)
		}
	case *minic.Cast:
		e.exprFacts(x.X, ne)
	}
}

// addrFacts records the evaluation of an lvalue's address computation
// (index expressions, pointer bases) without reading the object itself.
func (e *Effects) addrFacts(lv minic.Expr, ne *NodeEffects) {
	switch lv := lv.(type) {
	case *minic.Ident:
		return
	case *minic.Index:
		e.exprFacts(lv.Idx, ne)
		switch base := lv.X.(type) {
		case *minic.Ident:
			if base.Sym != nil {
				if _, isArr := base.Sym.Type.(*minic.Array); !isArr {
					ne.Use.Add(base.Sym) // reading the pointer itself
				}
			}
		case *minic.Index:
			// Multi-dimensional store: the inner index is still address
			// computation, not a read of the array.
			e.addrFacts(base, ne)
		case *minic.FieldExpr:
			e.addrFacts(base, ne)
		default:
			e.exprFacts(lv.X, ne)
		}
	case *minic.FieldExpr:
		if lv.Arrow {
			e.exprFacts(lv.X, ne)
		} else {
			e.addrFacts(lv.X, ne)
		}
	case *minic.Unary:
		if lv.Op == minic.Star {
			e.exprFacts(lv.X, ne)
		}
	}
}

// writeFacts records a write to an lvalue. strong marks killing writes
// (whole-variable scalar assignment).
func (e *Effects) writeFacts(lv minic.Expr, ne *NodeEffects, strong bool) {
	switch lv := lv.(type) {
	case *minic.Ident:
		if lv.Sym == nil {
			return
		}
		if strong && !minic.IsAggregate(lv.Sym.Type) {
			ne.Def.Add(lv.Sym)
		} else {
			ne.MayDef.Add(lv.Sym)
		}
	case *minic.Index:
		e.addrFacts(lv, ne)
		e.indexBaseEffect(lv, ne.MayDef)
	case *minic.FieldExpr:
		if lv.Arrow {
			e.exprFacts(lv.X, ne)
			e.derefEffect(lv.X, ne.MayDef)
		} else {
			// x.f = v: a partial write of x.
			root := lv.X
			for {
				if f, ok := root.(*minic.FieldExpr); ok && !f.Arrow {
					root = f.X
					continue
				}
				break
			}
			if id, ok := root.(*minic.Ident); ok && id.Sym != nil {
				ne.MayDef.Add(id.Sym)
			} else {
				e.writeFacts(root, ne, false)
			}
		}
	case *minic.Unary:
		if lv.Op == minic.Star {
			e.exprFacts(lv.X, ne)
			e.derefEffect(lv.X, ne.MayDef)
		}
	}
}
