package dataflow

import (
	"sort"

	"compreuse/internal/cfg"
	"compreuse/internal/minic"
)

// Def is one definition site: a CFG node that (may-)defines Sym.
type Def struct {
	Node   *cfg.Node
	Sym    *minic.Symbol
	Strong bool
	// Fn is the defining function (for the interprocedural layer).
	Fn *minic.FuncDecl
}

// DefUse holds def-use chains for one function, plus the program-wide
// links for globals (a def in one procedure may reach a use in another
// through globals or pointers — paper §3.1).
type DefUse struct {
	Fn *minic.FuncDecl
	// Defs lists all definition sites in Fn, in CFG node order.
	Defs []*Def
	// UseToDefs maps (node, sym) to the definitions reaching that use.
	useToDefs map[useKey][]*Def
}

type useKey struct {
	node *cfg.Node
	sym  *minic.Symbol
}

// DefsReaching returns the definitions of sym that reach the use at node n.
func (du *DefUse) DefsReaching(n *cfg.Node, sym *minic.Symbol) []*Def {
	return du.useToDefs[useKey{n, sym}]
}

// BuildDefUse computes reaching definitions over fn's CFG and links each
// use to its reaching defs. Strong defs kill previous defs of the same
// symbol; may-defs accumulate.
func (e *Effects) BuildDefUse(fn *minic.FuncDecl, g *cfg.Graph) *DefUse {
	du := &DefUse{Fn: fn, useToDefs: map[useKey][]*Def{}}
	eff := make(map[*cfg.Node]*NodeEffects, len(g.Nodes))
	gen := make(map[*cfg.Node][]*Def, len(g.Nodes))
	for _, n := range g.Nodes {
		ne := e.NodeEffectsOf(n)
		eff[n] = ne
		for _, sym := range ne.Def.Sorted() {
			d := &Def{Node: n, Sym: sym, Strong: true, Fn: fn}
			du.Defs = append(du.Defs, d)
			gen[n] = append(gen[n], d)
		}
		for _, sym := range ne.MayDef.Sorted() {
			d := &Def{Node: n, Sym: sym, Strong: false, Fn: fn}
			du.Defs = append(du.Defs, d)
			gen[n] = append(gen[n], d)
		}
	}
	// Parameters are defined at entry.
	for _, p := range fn.Params {
		d := &Def{Node: g.Entry, Sym: p.Sym, Strong: true, Fn: fn}
		du.Defs = append(du.Defs, d)
		gen[g.Entry] = append(gen[g.Entry], d)
	}

	type defSet map[*Def]bool
	in := make(map[*cfg.Node]defSet, len(g.Nodes))
	out := make(map[*cfg.Node]defSet, len(g.Nodes))
	for _, n := range g.Nodes {
		in[n] = defSet{}
		out[n] = defSet{}
	}
	order := g.ReversePostorder()
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			inN := in[n]
			for _, p := range n.Preds {
				for d := range out[p] {
					if !inN[d] {
						inN[d] = true
						changed = true
					}
				}
			}
			// out = gen ∪ (in − kill); kill = defs of strongly-defined syms.
			ne := eff[n]
			outN := out[n]
			for d := range inN {
				if ne.Def[d.Sym] {
					continue // killed
				}
				if !outN[d] {
					outN[d] = true
					changed = true
				}
			}
			for _, d := range gen[n] {
				if !outN[d] {
					outN[d] = true
					changed = true
				}
			}
		}
	}

	// Link uses.
	for _, n := range g.Nodes {
		ne := eff[n]
		for sym := range ne.Use {
			var reach []*Def
			for d := range in[n] {
				if d.Sym == sym {
					reach = append(reach, d)
				}
			}
			sort.Slice(reach, func(i, j int) bool {
				if reach[i].Node.ID != reach[j].Node.ID {
					return reach[i].Node.ID < reach[j].Node.ID
				}
				return reach[i].Sym.Name < reach[j].Sym.Name
			})
			if len(reach) > 0 {
				du.useToDefs[useKey{n, sym}] = reach
			}
		}
	}
	return du
}

// GlobalDefUse is the interprocedural layer: for every global (or
// escaping) symbol it lists the functions that may define it and the
// functions that may use it, so a def in one procedure can be linked to a
// use in another.
type GlobalDefUse struct {
	// DefFns maps a symbol to the functions that may write it.
	DefFns map[*minic.Symbol][]*minic.FuncDecl
	// UseFns maps a symbol to the functions that may read it.
	UseFns map[*minic.Symbol][]*minic.FuncDecl
}

// BuildGlobalDefUse derives the program-wide def-use summary from the
// mod/ref sets.
func (e *Effects) BuildGlobalDefUse() *GlobalDefUse {
	g := &GlobalDefUse{
		DefFns: map[*minic.Symbol][]*minic.FuncDecl{},
		UseFns: map[*minic.Symbol][]*minic.FuncDecl{},
	}
	for _, fn := range e.Prog.Funcs {
		mr := e.FuncModRef(fn)
		for _, sym := range mr.Mod.Sorted() {
			g.DefFns[sym] = append(g.DefFns[sym], fn)
		}
		for _, sym := range mr.Ref.Sorted() {
			g.UseFns[sym] = append(g.UseFns[sym], fn)
		}
	}
	return g
}

// WritersOf returns the functions that may write sym.
func (g *GlobalDefUse) WritersOf(sym *minic.Symbol) []*minic.FuncDecl { return g.DefFns[sym] }

// ReadersOf returns the functions that may read sym.
func (g *GlobalDefUse) ReadersOf(sym *minic.Symbol) []*minic.FuncDecl { return g.UseFns[sym] }
