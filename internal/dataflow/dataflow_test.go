package dataflow

import (
	"testing"

	"compreuse/internal/callgraph"
	"compreuse/internal/cfg"
	"compreuse/internal/minic"
	"compreuse/internal/pointer"
)

func setup(t *testing.T, src string) (*minic.Program, *Effects) {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	pts := pointer.Analyze(prog)
	cg := callgraph.Build(prog, pts)
	return prog, ComputeEffects(prog, pts, cg)
}

func symNames(s SymSet) map[string]bool {
	m := map[string]bool{}
	for sym := range s {
		m[sym.Name] = true
	}
	return m
}

const quanSrc = `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};
int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}
int main(void) { return quan(100); }
`

func TestUpwardExposedQuan(t *testing.T) {
	// The paper's running example: quan's inputs are val and power2
	// (power2 is later filtered as invariant; that is §2.4's job, not
	// upward-exposure's).
	prog, eff := setup(t, quanSrc)
	fn := prog.Func("quan")
	g := cfg.Build(fn)
	ue := eff.UpwardExposed(g)
	m := symNames(ue)
	if !m["val"] {
		t.Fatalf("val must be upward-exposed: %v", m)
	}
	if !m["power2"] {
		t.Fatalf("power2 must be upward-exposed: %v", m)
	}
	if m["i"] {
		t.Fatalf("i is defined before use, must not be exposed: %v", m)
	}
}

func TestUpwardExposedUseBeforeDef(t *testing.T) {
	prog, eff := setup(t, `
int f(int a) {
    int x;
    x = a + 1;     // a exposed, x defined
    int y = x + x; // x not exposed (defined above)
    return y;
}
int main(void) { return f(1); }`)
	g := cfg.Build(prog.Func("f"))
	m := symNames(eff.UpwardExposed(g))
	if !m["a"] || m["x"] || m["y"] {
		t.Fatalf("exposed = %v, want only a", m)
	}
}

func TestUpwardExposedSelfIncrement(t *testing.T) {
	prog, eff := setup(t, `
int f(int n) {
    n = n + 1;  // reads n before writing: exposed
    return n;
}
int main(void) { return f(1); }`)
	g := cfg.Build(prog.Func("f"))
	if !symNames(eff.UpwardExposed(g))["n"] {
		t.Fatal("n must be exposed (read before write in same statement)")
	}
}

func TestUpwardExposedBranchPaths(t *testing.T) {
	prog, eff := setup(t, `
int f(int c, int v) {
    int x;
    if (c)
        x = 1;     // defines x on one path only
    return x + v;  // x exposed via the else path
}
int main(void) { return f(1, 2); }`)
	g := cfg.Build(prog.Func("f"))
	m := symNames(eff.UpwardExposed(g))
	if !m["x"] || !m["c"] || !m["v"] {
		t.Fatalf("exposed = %v, want c, v, x", m)
	}
}

func TestUpwardExposedThroughPointer(t *testing.T) {
	prog, eff := setup(t, `
int g;
int f(int *p) {
    return *p + 1;
}
int main(void) { return f(&g); }`)
	fn := prog.Func("f")
	gr := cfg.Build(fn)
	m := symNames(eff.UpwardExposed(gr))
	if !m["p"] || !m["g"] {
		t.Fatalf("exposed = %v, want p and g (pointee)", m)
	}
}

func TestLivenessBasic(t *testing.T) {
	prog, eff := setup(t, `
int f(int a, int b) {
    int x = a + b;
    int y = x * 2;   // x dies here
    return y;
}
int main(void) { return f(1, 2); }`)
	fn := prog.Func("f")
	g := cfg.Build(fn)
	live := eff.Liveness(g, nil)
	// At entry, a and b are live (used before def), x and y are not.
	m := symNames(live[g.Entry].In)
	if !m["a"] || !m["b"] || m["x"] || m["y"] {
		t.Fatalf("live-in at entry = %v", m)
	}
}

func TestLivenessExternSeed(t *testing.T) {
	prog, eff := setup(t, `
int g;
int f(void) {
    g = 42;      // dead unless g is live-out of the function
    return 0;
}
int main(void) { f(); return g; }`)
	fn := prog.Func("f")
	gr := cfg.Build(fn)
	gSym := prog.Global("g").Sym

	noSeed := eff.Liveness(gr, nil)
	var assignNode *cfg.Node
	for _, n := range gr.Nodes {
		if n.Kind == cfg.NStmt {
			if es, ok := n.Stmt.(*minic.ExprStmt); ok {
				if _, isAssign := es.X.(*minic.AssignExpr); isAssign {
					assignNode = n
				}
			}
		}
	}
	if assignNode == nil {
		t.Fatal("no assignment node")
	}
	if noSeed[assignNode].Out[gSym] {
		t.Fatal("without extern seed, g must be dead after the store")
	}
	seeded := eff.Liveness(gr, SymSet{gSym: true})
	if !seeded[assignNode].Out[gSym] {
		t.Fatal("with extern seed, g must be live after the store")
	}
}

func TestSegmentOutputs(t *testing.T) {
	prog, eff := setup(t, `
int f(int v) {
    int i = 0;
    int scratch = 0;
    while (v > 1) { v /= 2; i++; scratch = v; }
    return i;
}
int main(void) { return f(100); }`)
	fn := prog.Func("f")
	var loop *minic.WhileStmt
	minic.InspectStmts(fn.Body, func(s minic.Stmt) bool {
		if w, ok := s.(*minic.WhileStmt); ok {
			loop = w
		}
		return true
	})
	// Segment = the while loop. Its outputs among {v, i, scratch} with
	// live-after = {i} (only i is used by the return).
	segG := cfg.BuildStmt(loop)
	iSym := findSym(t, prog, "f", "i")
	outs := eff.SegmentOutputs(segG, SymSet{iSym: true})
	m := symNames(outs)
	if !m["i"] || m["scratch"] || m["v"] {
		t.Fatalf("segment outputs = %v, want only i", m)
	}
}

func findSym(t *testing.T, prog *minic.Program, fn, name string) *minic.Symbol {
	t.Helper()
	f := prog.Func(fn)
	for _, p := range f.Params {
		if p.Name == name {
			return p.Sym
		}
	}
	for _, id := range minic.Idents(f.Body) {
		if id.Name == name && id.Sym != nil {
			return id.Sym
		}
	}
	t.Fatalf("symbol %s not found in %s", name, fn)
	return nil
}

func TestModRefTransitive(t *testing.T) {
	prog, eff := setup(t, `
int g1;
int g2;
int leaf(void) { g1 = 1; return g2; }
int mid(void) { return leaf(); }
int main(void) { return mid(); }`)
	mr := eff.FuncModRef(prog.Func("mid"))
	if !symNames(mr.Mod)["g1"] {
		t.Fatalf("mid must transitively mod g1: %v", symNames(mr.Mod))
	}
	if !symNames(mr.Ref)["g2"] {
		t.Fatalf("mid must transitively ref g2: %v", symNames(mr.Ref))
	}
}

func TestModRefExcludesPrivateLocals(t *testing.T) {
	prog, eff := setup(t, `
int f(void) {
    int private = 3;
    private++;
    return private;
}
int main(void) { return f(); }`)
	mr := eff.FuncModRef(prog.Func("f"))
	if symNames(mr.Mod)["private"] {
		t.Fatal("non-escaping locals must not appear in Mod")
	}
}

func TestModRefIncludesEscapedLocals(t *testing.T) {
	prog, eff := setup(t, `
int writer(int *p) { *p = 9; return 0; }
int main(void) {
    int mine = 0;
    writer(&mine);
    return mine;
}`)
	mr := eff.FuncModRef(prog.Func("writer"))
	if !symNames(mr.Mod)["mine"] {
		t.Fatalf("writer must mod the caller's local: %v", symNames(mr.Mod))
	}
}

func TestModRefThroughFunctionPointer(t *testing.T) {
	prog, eff := setup(t, `
int g;
int setter(int v) { g = v; return 0; }
int noop(int v) { return v; }
int main(void) {
    int (*op)(int) = setter;
    op(3);
    return g;
}`)
	mr := eff.FuncModRef(prog.Func("main"))
	if !symNames(mr.Mod)["g"] {
		t.Fatal("indirect call effects must propagate")
	}
}

func TestCallNodeEffects(t *testing.T) {
	prog, eff := setup(t, `
int g;
int touch(void) { g++; return g; }
int main(void) { return touch(); }`)
	g := cfg.Build(prog.Func("main"))
	var retNode *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.NStmt {
			if _, ok := n.Stmt.(*minic.ReturnStmt); ok {
				retNode = n
			}
		}
	}
	ne := eff.NodeEffectsOf(retNode)
	if !symNames(ne.Use)["g"] {
		t.Fatal("call must use callee's refs")
	}
	if !symNames(ne.MayDef)["g"] {
		t.Fatal("call must may-def callee's mods")
	}
}

func TestDefUseChains(t *testing.T) {
	prog, eff := setup(t, `
int f(int c) {
    int x = 1;        // def 1
    if (c)
        x = 2;        // def 2
    return x;         // use: reached by both defs
}
int main(void) { return f(1); }`)
	fn := prog.Func("f")
	g := cfg.Build(fn)
	du := eff.BuildDefUse(fn, g)
	var retNode *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.NStmt {
			if _, ok := n.Stmt.(*minic.ReturnStmt); ok {
				retNode = n
			}
		}
	}
	x := findSym(t, prog, "f", "x")
	defs := du.DefsReaching(retNode, x)
	if len(defs) != 2 {
		t.Fatalf("reaching defs of x at return: %d, want 2", len(defs))
	}
}

func TestDefUseKill(t *testing.T) {
	prog, eff := setup(t, `
int f(void) {
    int x = 1;   // killed below
    x = 2;       // only def reaching the return
    return x;
}
int main(void) { return f(); }`)
	fn := prog.Func("f")
	g := cfg.Build(fn)
	du := eff.BuildDefUse(fn, g)
	var retNode *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.NStmt {
			if _, ok := n.Stmt.(*minic.ReturnStmt); ok {
				retNode = n
			}
		}
	}
	x := findSym(t, prog, "f", "x")
	defs := du.DefsReaching(retNode, x)
	if len(defs) != 1 {
		t.Fatalf("reaching defs = %d, want 1 (strong def kills)", len(defs))
	}
	if !defs[0].Strong {
		t.Fatal("the surviving def is strong")
	}
}

func TestDefUseParamsDefinedAtEntry(t *testing.T) {
	prog, eff := setup(t, `
int f(int a) { return a; }
int main(void) { return f(3); }`)
	fn := prog.Func("f")
	g := cfg.Build(fn)
	du := eff.BuildDefUse(fn, g)
	var retNode *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.NStmt {
			if _, ok := n.Stmt.(*minic.ReturnStmt); ok {
				retNode = n
			}
		}
	}
	a := fn.Params[0].Sym
	defs := du.DefsReaching(retNode, a)
	if len(defs) != 1 || defs[0].Node != g.Entry {
		t.Fatalf("parameter def must reach from entry: %v", defs)
	}
}

func TestGlobalDefUse(t *testing.T) {
	prog, eff := setup(t, `
int shared;
int producer(void) { shared = 5; return 0; }
int consumer(void) { return shared; }
int main(void) { producer(); return consumer(); }`)
	gdu := eff.BuildGlobalDefUse()
	shared := prog.Global("shared").Sym
	writers := map[string]bool{}
	for _, f := range gdu.WritersOf(shared) {
		writers[f.Name] = true
	}
	readers := map[string]bool{}
	for _, f := range gdu.ReadersOf(shared) {
		readers[f.Name] = true
	}
	if !writers["producer"] {
		t.Fatalf("writers: %v", writers)
	}
	if !readers["consumer"] {
		t.Fatalf("readers: %v", readers)
	}
	// The def-use chain crosses procedures: producer defs reach consumer.
	if writers["consumer"] {
		t.Fatal("consumer does not write shared")
	}
}

func TestArrayElementWriteIsMayDef(t *testing.T) {
	prog, eff := setup(t, `
int a[10];
int f(int i) {
    a[i] = 1;
    return a[0];  // still exposed: element write does not kill the array
}
int main(void) { return f(3); }`)
	fn := prog.Func("f")
	g := cfg.Build(fn)
	ue := eff.UpwardExposed(g)
	if !symNames(ue)["a"] {
		t.Fatal("array must stay upward-exposed after an element write")
	}
}

func TestMultiDimStoreAddressIsNotARead(t *testing.T) {
	// Writing m[i][j] must not make m upward-exposed: the inner index is
	// address arithmetic, not a load (this is what keeps an IDCT's output
	// block out of its input key).
	prog, eff := setup(t, `
int m[4][4];
int fill(int v) {
    int i;
    int j;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
            m[i][j] = v * i + j;
    return 0;
}
int main(void) { fill(3); return m[1][2]; }`)
	g := cfg.Build(prog.Func("fill"))
	ue := eff.UpwardExposed(g)
	if symNames(ue)["m"] {
		t.Fatalf("m must not be upward-exposed: %v", symNames(ue))
	}
	if !symNames(ue)["v"] {
		t.Fatal("v must be exposed")
	}
}
