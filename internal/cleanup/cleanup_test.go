package cleanup

import (
	"strings"
	"testing"

	"compreuse/internal/interp"
	"compreuse/internal/minic"
)

func compile(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	return prog
}

// runBoth compiles src, runs it, cleans it up, runs it again, and checks
// that results and output agree.
func runBoth(t *testing.T, src string) (int, *minic.Program) {
	t.Helper()
	before := compile(t, src)
	resBefore, err := interp.Run(before, interp.Options{})
	if err != nil {
		t.Fatalf("before: %v", err)
	}
	after := compile(t, src)
	n := Run(after)
	resAfter, err := interp.Run(after, interp.Options{})
	if err != nil {
		t.Fatalf("after cleanup: %v\n%s", err, minic.Print(after))
	}
	if resBefore.Ret != resAfter.Ret {
		t.Fatalf("cleanup changed result: %d -> %d\n%s", resBefore.Ret, resAfter.Ret, minic.Print(after))
	}
	if resBefore.Output != resAfter.Output {
		t.Fatalf("cleanup changed output: %q -> %q", resBefore.Output, resAfter.Output)
	}
	return n, after
}

func TestSplitsNestedCalls(t *testing.T) {
	n, prog := runBoth(t, `
int f(int x) { return x + 1; }
int g(int x) { return x * 2; }
int main(void) {
    int r = f(3) + g(4);
    return r;
}`)
	if n != 2 {
		t.Fatalf("hoisted %d calls, want 2", n)
	}
	// The printed output must contain the temps.
	out := minic.Print(prog)
	if !strings.Contains(out, "__crc_t0") || !strings.Contains(out, "__crc_t1") {
		t.Fatalf("temps missing:\n%s", out)
	}
}

func TestDirectCallsStay(t *testing.T) {
	n, _ := runBoth(t, `
int f(int x) { return x + 1; }
int main(void) {
    int a = f(1);   // direct init: stays
    int b;
    b = f(2);       // direct assign: stays
    f(3);           // statement call: stays
    return a + b;
}`)
	if n != 0 {
		t.Fatalf("hoisted %d calls, want 0", n)
	}
}

func TestNestedArgumentCalls(t *testing.T) {
	n, prog := runBoth(t, `
int f(int x) { return x + 1; }
int main(void) {
    return f(f(f(1)));   // outer call in return position is hoisted? no:
                          // return expr is top-level; inner two are split
}`)
	if n != 2 {
		t.Fatalf("hoisted %d calls, want 2\n%s", n, minic.Print(prog))
	}
}

func TestShortCircuitNotHoisted(t *testing.T) {
	// g() must not execute when c is false; hoisting would break that.
	n, _ := runBoth(t, `
int calls = 0;
int g(void) { calls++; return 1; }
int main(void) {
    int c = 0;
    int r = c && g();
    __assert(calls == 0);
    int r2 = c || g();
    __assert(calls == 1);
    return r + r2;
}`)
	_ = n
}

func TestTernaryNotHoisted(t *testing.T) {
	runBoth(t, `
int bang(void) { __assert(0); return 0; }
int safe(void) { return 7; }
int main(void) {
    int c = 1;
    return c ? safe() : bang();   // bang must never run
}`)
}

func TestLoopConditionNotHoisted(t *testing.T) {
	// next() must be called once per iteration.
	runBoth(t, `
int n = 0;
int next(void) { n++; return n; }
int main(void) {
    int iters = 0;
    while (next() < 5) iters++;
    __assert(iters == 4);
    __assert(n == 5);
    return iters;
}`)
}

func TestIfConditionHoisted(t *testing.T) {
	n, prog := runBoth(t, `
int f(int x) { return x * 2; }
int main(void) {
    int r = 0;
    if (f(3) + f(4) > 10) r = 1;
    return r;
}`)
	if n != 2 {
		t.Fatalf("hoisted %d, want 2 (if condition is evaluated exactly once)\n%s",
			n, minic.Print(prog))
	}
}

func TestReturnExprSplit(t *testing.T) {
	n, _ := runBoth(t, `
int f(int x) { return x + 1; }
int main(void) { return f(1) * f(2); }`)
	if n != 2 {
		t.Fatalf("hoisted %d, want 2", n)
	}
}

func TestNestedIfBodyWrapped(t *testing.T) {
	// A non-block then-branch that needs hoisting must become a block.
	n, prog := runBoth(t, `
int f(int x) { return x + 1; }
int main(void) {
    int r = 0;
    int c = 1;
    if (c)
        r = f(1) + f(2);
    return r;
}`)
	if n != 2 {
		t.Fatalf("hoisted %d, want 2\n%s", n, minic.Print(prog))
	}
}

func TestRecheckAfterCleanup(t *testing.T) {
	// The rewritten program must still print and re-parse cleanly.
	prog := compile(t, `
int f(int x) { return x + 1; }
int main(void) { return f(1) + f(2) * f(3); }`)
	Run(prog)
	printed := minic.Print(prog)
	re, err := minic.Parse("re.c", printed)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, printed)
	}
	if err := minic.Check(re); err != nil {
		t.Fatalf("re-check: %v\n%s", err, printed)
	}
}

func TestFrameWordsGrow(t *testing.T) {
	prog := compile(t, `
int f(int x) { return x + 1; }
int main(void) { return f(1) + f(2); }`)
	before := prog.Func("main").FrameWords
	Run(prog)
	after := prog.Func("main").FrameWords
	if after != before+2 {
		t.Fatalf("frame words %d -> %d, want +2", before, after)
	}
}
