// Package cleanup implements the paper's clean-up module (§3.1): "each
// function call in a complex expression is split from the expression in
// order to simplify the interprocedural analysis."
//
// The pass hoists calls that appear nested inside larger expressions into
// fresh temporaries declared immediately before the enclosing statement:
//
//	x = f(a) + g(b);   ⇒   int __crc_t0 = f(a);
//	                       int __crc_t1 = g(b);
//	                       x = __crc_t0 + __crc_t1;
//
// Hoisting is only performed where it preserves semantics: out of
// expression statements, declaration initializers, return expressions and
// if conditions. Calls under short-circuit operators (&&, ||), the ternary
// operator, or loop conditions/posts are left in place — hoisting those
// would change how often the call executes.
package cleanup

import (
	"fmt"

	"compreuse/internal/minic"
)

// Run normalizes every function of prog in place and returns the number of
// calls hoisted. The program remains checked (new nodes are typed and new
// symbols have slots).
func Run(prog *minic.Program) int {
	c := &cleaner{prog: prog}
	for _, fn := range prog.Funcs {
		if fn.Body != nil {
			c.fn = fn
			c.block(fn.Body)
		}
	}
	return c.hoisted
}

type cleaner struct {
	prog    *minic.Program
	fn      *minic.FuncDecl
	hoisted int
	tmpSeq  int
}

// block rewrites the statements of b, inserting temp declarations.
func (c *cleaner) block(b *minic.Block) {
	var out []minic.Stmt
	for _, s := range b.Stmts {
		pre := c.stmt(s)
		out = append(out, pre...)
		out = append(out, s)
	}
	b.Stmts = out
}

// stmt processes one statement: recurses into nested statements and
// returns the temp declarations to insert before s.
func (c *cleaner) stmt(s minic.Stmt) []minic.Stmt {
	switch s := s.(type) {
	case *minic.Block:
		c.block(s)
		return nil
	case *minic.DeclStmt:
		var pre []minic.Stmt
		for _, d := range s.Decls {
			if d.Init != nil {
				d.Init = c.expr(d.Init, true, &pre)
			}
		}
		return pre
	case *minic.ExprStmt:
		var pre []minic.Stmt
		s.X = c.expr(s.X, true, &pre)
		return pre
	case *minic.ReturnStmt:
		var pre []minic.Stmt
		if s.X != nil {
			s.X = c.expr(s.X, true, &pre)
		}
		return pre
	case *minic.IfStmt:
		var pre []minic.Stmt
		s.Cond = c.expr(s.Cond, false, &pre)
		c.wrapNested(&s.Then)
		if s.Else != nil {
			c.wrapNested(&s.Else)
		}
		return pre
	case *minic.WhileStmt:
		// Loop conditions are evaluated per iteration: no hoisting.
		c.wrapNested(&s.Body)
		return nil
	case *minic.ForStmt:
		var pre []minic.Stmt
		if s.Init != nil {
			pre = append(pre, c.stmt(s.Init)...)
		}
		c.wrapNested(&s.Body)
		return pre
	case *minic.ReuseRegion:
		c.wrapNested(&s.Body)
		return nil
	}
	return nil
}

// wrapNested processes a nested statement; if hoisting produced temp
// declarations, the statement is replaced by a block holding them.
func (c *cleaner) wrapNested(sp *minic.Stmt) {
	s := *sp
	if b, ok := s.(*minic.Block); ok {
		c.block(b)
		return
	}
	pre := c.stmt(s)
	if len(pre) == 0 {
		return
	}
	blk := c.prog.NewBlock(append(pre, s)...)
	*sp = blk
}

// expr rewrites e, hoisting nested calls into *pre. topLevel marks
// positions where a call may legally remain (the whole expression, or the
// direct RHS of a simple assignment).
func (c *cleaner) expr(e minic.Expr, topLevel bool, pre *[]minic.Stmt) minic.Expr {
	switch e := e.(type) {
	case *minic.Call:
		// Hoist arguments first (inner calls split out of argument
		// expressions).
		for i, a := range e.Args {
			e.Args[i] = c.expr(a, false, pre)
		}
		if topLevel {
			return e
		}
		if minic.IsVoid(e.Type()) {
			// A void call nested in an expression cannot occur (sema
			// rejects it); keep defensive.
			return e
		}
		return c.hoist(e, pre)

	case *minic.AssignExpr:
		// The direct RHS of a simple assignment to a scalar lvalue is a
		// legal call position: x = f(...) stays.
		rhsTop := topLevel && e.Op == minic.Assign
		e.RHS = c.expr(e.RHS, rhsTop, pre)
		e.LHS = c.expr(e.LHS, false, pre)
		return e

	case *minic.Unary:
		e.X = c.expr(e.X, false, pre)
		return e
	case *minic.IncDec:
		e.X = c.expr(e.X, false, pre)
		return e
	case *minic.Binary:
		if e.Op == minic.AndAnd || e.Op == minic.OrOr {
			// The left side always evaluates; the right side is
			// conditional and must not be hoisted.
			e.X = c.expr(e.X, false, pre)
			return e
		}
		e.X = c.expr(e.X, false, pre)
		e.Y = c.expr(e.Y, false, pre)
		return e
	case *minic.Cond:
		// Only the condition is unconditionally evaluated.
		e.Cond = c.expr(e.Cond, false, pre)
		return e
	case *minic.Index:
		e.X = c.expr(e.X, false, pre)
		e.Idx = c.expr(e.Idx, false, pre)
		return e
	case *minic.FieldExpr:
		e.X = c.expr(e.X, false, pre)
		return e
	case *minic.Cast:
		e.X = c.expr(e.X, false, pre)
		return e
	}
	return e
}

// hoist moves call into a fresh temp declared in *pre and returns the
// replacement identifier.
func (c *cleaner) hoist(call *minic.Call, pre *[]minic.Stmt) minic.Expr {
	t := call.Type()
	name := fmt.Sprintf("__crc_t%d", c.tmpSeq)
	c.tmpSeq++
	sym := &minic.Symbol{
		Name: name,
		Kind: minic.SymLocal,
		Type: t,
		Slot: c.fn.FrameWords,
		Func: c.fn,
	}
	c.fn.FrameWords += t.Words()
	d := c.prog.NewVarDecl(name, t, call)
	d.Sym = sym
	ds := c.prog.NewDeclStmt(d)
	*pre = append(*pre, ds)
	c.hoisted++
	return c.prog.NewIdent(sym)
}
