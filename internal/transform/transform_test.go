package transform

import (
	"strings"
	"testing"

	"compreuse/internal/callgraph"
	"compreuse/internal/dataflow"
	"compreuse/internal/interp"
	"compreuse/internal/minic"
	"compreuse/internal/pointer"
	"compreuse/internal/reusetab"
	"compreuse/internal/segment"
)

func analyzeProg(t *testing.T, src string) (*minic.Program, *segment.Analysis) {
	t.Helper()
	prog, err := minic.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatal(err)
	}
	pts := pointer.Analyze(prog)
	cg := callgraph.Build(prog, pts)
	eff := dataflow.ComputeEffects(prog, pts, cg)
	return prog, segment.Analyze(prog, pts, cg, eff, segment.Options{})
}

func pick(t *testing.T, a *segment.Analysis, names ...string) []*segment.Segment {
	t.Helper()
	var out []*segment.Segment
	for _, n := range names {
		found := false
		for _, s := range a.Segments {
			if s.Name == n {
				if !s.Eligible {
					t.Fatalf("segment %s ineligible: %s", n, s.Reason)
				}
				out = append(out, s)
				found = true
			}
		}
		if !found {
			t.Fatalf("segment %s not found", n)
		}
	}
	return out
}

// makeTables instantiates tables for a transform result.
func makeTables(res *Result, mode reusetab.Mode) map[int]*reusetab.Table {
	tabs := map[int]*reusetab.Table{}
	for _, ts := range res.Tables {
		tabs[ts.ID] = reusetab.New(ts.Config(mode, 0, false))
	}
	return tabs
}

const quanProg = `
int power2[15] = {1,2,4,8,16,32,64,128,256,512,1024,2048,4096,8192,16384};

int quan(int val) {
    int i;
    for (i = 0; i < 15; i++)
        if (val < power2[i])
            break;
    return (i);
}

int main(void) {
    int s = 0;
    int v;
    for (v = 0; v < 2000; v++)
        s += quan((v * 37) & 1023);
    return s;
}
`

func TestTransformQuanPreservesSemantics(t *testing.T) {
	orig, _ := analyzeProg(t, quanProg)
	origRes, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	prog, a := analyzeProg(t, quanProg)
	res := Apply(prog, pick(t, a, "quan@func"), Options{})
	if len(res.Tables) != 1 {
		t.Fatalf("tables: %d", len(res.Tables))
	}
	tabs := makeTables(res, reusetab.ModeReuse)
	got, err := interp.Run(prog, interp.Options{Tables: tabs})
	if err != nil {
		t.Fatalf("transformed run: %v\n%s", err, minic.Print(prog))
	}
	if got.Ret != origRes.Ret {
		t.Fatalf("results differ: %d vs %d", got.Ret, origRes.Ret)
	}
	// 2000 calls over 1024 distinct keys (values (v*37)&1023 cycle through
	// 1024 residues; with 2000 calls at least 976 repeats).
	st := tabs[0].TotalStats()
	if st.Hits < 900 {
		t.Fatalf("hits = %d, expected substantial reuse", st.Hits)
	}
	if got.Cycles >= origRes.Cycles {
		t.Fatalf("no speedup: %d >= %d cycles", got.Cycles, origRes.Cycles)
	}
}

func TestTransformedPrintedForm(t *testing.T) {
	prog, a := analyzeProg(t, quanProg)
	Apply(prog, pick(t, a, "quan@func"), Options{})
	out := minic.Print(prog)
	for _, want := range []string{"__crc_probe(0, 0, val)", "__crc_record(0, 0, i)", "__crc_fetch(0, 0, i)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("printed form missing %q:\n%s", want, out)
		}
	}
	// The return stays outside the region (Fig. 2b).
	if !strings.Contains(out, "return (i);") {
		t.Fatalf("trailing return missing:\n%s", out)
	}
}

// mergedSrc has three IF-branch segments in ONE function reading the
// identical input variables (a, b) — the GNU Go accumulate_influence
// shape (§2.5).
const mergedSrc = `
int w1[8];
int w2[8];
int w3[8];
int r1;
int r2;
int r3;
int f(int a, int b) {
    if (a >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 8; k++)
            acc += w1[k] * a + b;
        r1 = acc;
    }
    if (b >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 8; k++)
            acc += w2[k] * a - b;
        r2 = acc;
    }
    if (a + b >= 0) {
        int acc = 0;
        int k;
        for (k = 0; k < 8; k++)
            acc += (w3[k] ^ a) + b;
        r3 = acc;
    }
    return r1 + r2 + r3;
}
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 200; i++)
        s += f(i & 7, i & 3) + r1 - r2 + r3;
    return s;
}
`

// mergedSegs are the three identical-input branch segments of mergedSrc.
var mergedSegs = []string{"f@if1_then", "f@if2_then", "f@if3_then"}

func TestMergedTables(t *testing.T) {
	src := mergedSrc
	orig, _ := analyzeProg(t, src)
	origRes, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	prog, a := analyzeProg(t, src)
	res := Apply(prog, pick(t, a, mergedSegs...), Options{})
	if len(res.Tables) != 1 {
		t.Fatalf("want 1 merged table, got %d", len(res.Tables))
	}
	if len(res.Tables[0].Segs) != 3 {
		t.Fatalf("merged table has %d segs", len(res.Tables[0].Segs))
	}
	tabs := makeTables(res, reusetab.ModeReuse)
	got, err := interp.Run(prog, interp.Options{Tables: tabs})
	if err != nil {
		t.Fatal(err)
	}
	if got.Ret != origRes.Ret {
		t.Fatalf("results differ: %d vs %d", got.Ret, origRes.Ret)
	}
	// All segments hit: 32 distinct keys, 200 instances each.
	for bit := 0; bit < 3; bit++ {
		st := tabs[0].Stats(bit)
		if st.Hits < 150 {
			t.Fatalf("seg %d hits = %d", bit, st.Hits)
		}
	}
	// Merged entry: 8-byte key (two ints) + three 4-byte outputs + an
	// 8-byte valid-bit vector.
	if tabs[0].EntryBytes() != 8+4+4+4+8 {
		t.Fatalf("entry bytes = %d", tabs[0].EntryBytes())
	}
}

func TestMergeReducesStorage(t *testing.T) {
	// §2.5's point: merging cuts per-entry storage (one shared key).
	progA, aA := analyzeProg(t, mergedSrc)
	merged := Apply(progA, pick(t, aA, mergedSegs...), Options{})
	progB, aB := analyzeProg(t, mergedSrc)
	split := Apply(progB, pick(t, aB, mergedSegs...), Options{NoMerge: true})
	mergedBytes := 0
	for _, ts := range merged.Tables {
		per := ts.KeyBytes + 8 // + bit vector
		for _, ob := range ts.OutBytes {
			per += ob
		}
		mergedBytes += per
	}
	splitBytes := 0
	for _, ts := range split.Tables {
		per := ts.KeyBytes
		for _, ob := range ts.OutBytes {
			per += ob
		}
		splitBytes += per
	}
	if mergedBytes >= splitBytes {
		t.Fatalf("merging must save key storage: merged=%d split=%d", mergedBytes, splitBytes)
	}
}

func TestNoMergeOption(t *testing.T) {
	src := `
int f1(int a) { int r = a * 3; return r; }
int f2(int a) { int r = a ^ 7; return r; }
int main(void) { return f1(1) + f2(2); }
`
	prog, a := analyzeProg(t, src)
	res := Apply(prog, pick(t, a, "f1@func", "f2@func"), Options{NoMerge: true})
	if len(res.Tables) != 2 {
		t.Fatalf("want 2 tables with NoMerge, got %d", len(res.Tables))
	}
}

func TestDifferentInputsNotMerged(t *testing.T) {
	src := `
int f1(int a) { int r = a * 3; return r; }
int f2(int a, int b) { int r = a ^ b; return r; }
int main(void) { return f1(1) + f2(2, 3); }
`
	prog, a := analyzeProg(t, src)
	res := Apply(prog, pick(t, a, "f1@func", "f2@func"), Options{})
	if len(res.Tables) != 2 {
		t.Fatalf("segments with different inputs must not merge: %d tables", len(res.Tables))
	}
}

func TestProfileModeInstrumentation(t *testing.T) {
	// The same transform in profile mode implements value-set profiling.
	prog, a := analyzeProg(t, quanProg)
	res := Apply(prog, pick(t, a, "quan@func"), Options{})
	tabs := makeTables(res, reusetab.ModeProfile)
	got, err := interp.Run(prog, interp.Options{CollectFreq: true, Tables: tabs})
	if err != nil {
		t.Fatal(err)
	}
	if tabs[0].Distinct() == 0 {
		t.Fatal("profiling collected no census")
	}
	rr := res.Regions[pick(t, a, "quan@func")[0]]
	st := got.Segs[rr.ID()]
	if st == nil || st.Instances != 2000 || st.Hits != 0 {
		t.Fatalf("profile stats: %+v", st)
	}
	if st.MeasuredC() <= 0 {
		t.Fatal("no measured granularity")
	}
}

func TestLoopBodyTransform(t *testing.T) {
	src := `
int out[64];
int main(void) {
    int i;
    for (i = 0; i < 64; i++) {
        int v = i & 7;
        int r = 0;
        int k;
        for (k = 0; k < 30; k++)
            r += (k ^ v) * v;
        out[i] = r;
    }
    int s = 0;
    for (i = 0; i < 64; i++) s += out[i];
    return s;
}
`
	orig, _ := analyzeProg(t, src)
	origRes, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, a := analyzeProg(t, src)
	res := Apply(prog, pick(t, a, "main@loop1"), Options{})
	tabs := makeTables(res, reusetab.ModeReuse)
	got, err := interp.Run(prog, interp.Options{Tables: tabs})
	if err != nil {
		t.Fatalf("%v\n%s", err, minic.Print(prog))
	}
	if got.Ret != origRes.Ret {
		t.Fatalf("results differ: %d vs %d", got.Ret, origRes.Ret)
	}
	// 64 iterations; key is i itself (64 distinct) — the element output
	// out[i] means there is no reuse benefit here (all keys distinct), but
	// semantics must hold. Check stats consistency.
	st := tabs[0].TotalStats()
	if st.Probes != 64 {
		t.Fatalf("probes = %d", st.Probes)
	}
}

func TestIfBranchTransform(t *testing.T) {
	src := `
int acc;
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 100; i++) {
        int v = i & 3;
        if (i & 1) {
            int r = 0;
            int k;
            for (k = 0; k < 20; k++)
                r += k * v;
            acc = r;
        }
        s += acc;
    }
    return s;
}
`
	orig, _ := analyzeProg(t, src)
	origRes, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, a := analyzeProg(t, src)
	var seg *segment.Segment
	for _, s := range a.Segments {
		if s.Kind == segment.IfBranch && s.Eligible {
			seg = s
			break
		}
	}
	if seg == nil {
		for _, s := range a.Segments {
			t.Logf("%s eligible=%v reason=%s", s.Name, s.Eligible, s.Reason)
		}
		t.Fatal("no eligible if-branch segment")
	}
	res := Apply(prog, []*segment.Segment{seg}, Options{})
	tabs := makeTables(res, reusetab.ModeReuse)
	got, err := interp.Run(prog, interp.Options{Tables: tabs})
	if err != nil {
		t.Fatal(err)
	}
	if got.Ret != origRes.Ret {
		t.Fatalf("results differ: %d vs %d", got.Ret, origRes.Ret)
	}
	st := tabs[0].TotalStats()
	if st.Probes != 50 {
		t.Fatalf("branch taken 50 times, probes = %d", st.Probes)
	}
	// Odd i gives v = i & 3 in {1, 3}: 2 distinct keys over 50 takes.
	if st.Hits != 48 {
		t.Fatalf("hits = %d, want 48 (2 distinct keys)", st.Hits)
	}
}

func TestVoidFunctionTransform(t *testing.T) {
	src := `
int gout;
int table[4] = {10, 20, 30, 40};
void compute(int v) {
    int r = 0;
    int k;
    for (k = 0; k < 4; k++)
        r += table[k] * v;
    gout = r;
}
int main(void) {
    int s = 0;
    int i;
    for (i = 0; i < 100; i++) {
        compute(i & 1);
        s += gout;
    }
    return s;
}
`
	orig, _ := analyzeProg(t, src)
	origRes, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, a := analyzeProg(t, src)
	res := Apply(prog, pick(t, a, "compute@func"), Options{})
	tabs := makeTables(res, reusetab.ModeReuse)
	got, err := interp.Run(prog, interp.Options{Tables: tabs})
	if err != nil {
		t.Fatal(err)
	}
	if got.Ret != origRes.Ret {
		t.Fatalf("results differ: %d vs %d", got.Ret, origRes.Ret)
	}
	if tabs[0].TotalStats().Hits != 98 {
		t.Fatalf("hits = %d, want 98", tabs[0].TotalStats().Hits)
	}
}
