// Package transform performs the paper's code generation for computation
// reuse (§2.2, §3.1): each selected code segment is wrapped in a table
// look-up of the shape of Figure 2(b), and segments with identical input
// variables share one merged hash table with a valid-bit vector (§2.5,
// Table 2).
//
// The same transformation, with tables in profile mode, realizes the
// value-set profiling instrumentation of §2.1: probes always miss, the
// body always runs, and the table collects the input census.
package transform

import (
	"sort"
	"strings"

	"compreuse/internal/depmemo"
	"compreuse/internal/minic"
	"compreuse/internal/reusetab"
	"compreuse/internal/segment"
)

// TableSpec describes one (possibly merged) reuse table.
type TableSpec struct {
	ID   int
	Name string
	// Segs are the segments sharing this table; a segment's position is
	// its valid-bit index.
	Segs []*segment.Segment
	// KeyBytes is the modeled byte width of the shared input set.
	KeyBytes int
	// OutWords / OutBytes are per-segment output sizes.
	OutWords []int
	OutBytes []int
	// Dep marks a dependence-tracked table: the region probes a
	// depmemo footprint trie instead of a flat-key reusetab. Dep tables
	// are never merged (footprints are per-body read paths), so Segs
	// always has exactly one element.
	Dep bool
}

// DepConfig instantiates a depmemo.Config for this table (Dep only).
func (ts *TableSpec) DepConfig(entries int, profile bool) depmemo.Config {
	return depmemo.Config{
		Name:    ts.Name,
		Entries: entries,
		Profile: profile,
	}
}

// Config instantiates a reusetab.Config for this table.
func (ts *TableSpec) Config(mode reusetab.Mode, entries int, lru bool) reusetab.Config {
	return reusetab.Config{
		Name:     ts.Name,
		Segs:     len(ts.Segs),
		KeyBytes: ts.KeyBytes,
		OutWords: append([]int(nil), ts.OutWords...),
		OutBytes: append([]int(nil), ts.OutBytes...),
		Entries:  entries,
		LRU:      lru,
		Mode:     mode,
	}
}

// Result reports what Apply did.
type Result struct {
	Tables []*TableSpec
	// Regions maps each transformed segment to its region node.
	Regions map[*segment.Segment]*minic.ReuseRegion
}

// Options tunes the transformation.
type Options struct {
	// Merge enables hash-table merging for segments with identical input
	// variables (default on; disable to measure the storage effect).
	NoMerge bool
	// DepSegs selects segments (by name) to transform as dependence-
	// tracked regions: the region declares the trackable location set
	// (whole aggregates, not single elements) and probes a footprint
	// trie. Dep segments never merge.
	DepSegs map[string]bool
}

// Apply wraps the selected segments of prog in ReuseRegions, mutating the
// AST in place, and returns the table layout. The caller instantiates the
// actual tables (reusetab.New) from the specs, choosing mode and size.
func Apply(prog *minic.Program, selected []*segment.Segment, opts Options) *Result {
	res := &Result{Regions: map[*segment.Segment]*minic.ReuseRegion{}}

	// Dependence-tracked segments bypass grouping entirely: a footprint
	// trie is keyed on a body's observed read path, which is never
	// shared across bodies.
	var flat, dep []*segment.Segment
	for _, s := range selected {
		if opts.DepSegs[s.Name] {
			dep = append(dep, s)
		} else {
			flat = append(flat, s)
		}
	}

	// Group segments by identical input variable lists (§2.5). The key is
	// the identity of the symbol sequence.
	groups := map[string][]*segment.Segment{}
	var order []string
	for _, s := range flat {
		k := inputKey(s)
		if opts.NoMerge {
			k = k + "#" + s.Name // unique key: no sharing
		}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], s)
	}
	sort.Strings(order)

	for _, k := range order {
		segs := groups[k]
		sort.Slice(segs, func(i, j int) bool { return segs[i].Index < segs[j].Index })
		ts := &TableSpec{
			ID:       len(res.Tables),
			Name:     tableName(segs),
			Segs:     segs,
			KeyBytes: segs[0].KeyBytes,
		}
		for _, s := range segs {
			outWords := 0
			for _, o := range s.Outputs {
				outWords += o.Words()
			}
			ts.OutWords = append(ts.OutWords, outWords)
			ts.OutBytes = append(ts.OutBytes, s.OutBytes)
		}
		res.Tables = append(res.Tables, ts)
		for bit, s := range segs {
			res.Regions[s] = wrap(prog, s, ts.ID, bit, false)
		}
	}

	// Dep tables, one per segment, IDs continuing after the flat tables
	// (the interpreter's table-ID space is shared).
	sort.Slice(dep, func(i, j int) bool { return dep[i].Index < dep[j].Index })
	for _, s := range dep {
		outWords := 0
		for _, o := range s.Outputs {
			outWords += o.Words()
		}
		ts := &TableSpec{
			ID:       len(res.Tables),
			Name:     s.Name,
			Segs:     []*segment.Segment{s},
			KeyBytes: s.KeyBytes,
			OutWords: []int{outWords},
			OutBytes: []int{s.OutBytes},
			Dep:      true,
		}
		res.Tables = append(res.Tables, ts)
		res.Regions[s] = wrap(prog, s, ts.ID, 0, true)
	}
	return res
}

// inputKey canonically identifies a segment's input list. Two segments
// merge only when they key on the same locations in the same order.
func inputKey(s *segment.Segment) string {
	var sb strings.Builder
	for _, in := range s.Inputs {
		// Pointer identity via formatted address would be nondeterministic;
		// name + kind + declaring function is unique within a program for
		// merge purposes (same-name locals of different functions do not
		// merge because their Func differs).
		sb.WriteString(in.Sym.Name)
		sb.WriteByte('/')
		sb.WriteString(in.Sym.Kind.String())
		if in.Sym.Func != nil {
			sb.WriteByte('@')
			sb.WriteString(in.Sym.Func.Name)
		}
		if in.Elem != nil {
			sb.WriteByte('[')
			sb.WriteString(minic.PrintExpr(in.Elem))
			sb.WriteByte(']')
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

func tableName(segs []*segment.Segment) string {
	if len(segs) == 1 {
		return segs[0].Name
	}
	names := make([]string, len(segs))
	for i, s := range segs {
		names[i] = s.Name
	}
	return "merged{" + strings.Join(names, ",") + "}"
}

// hoistOutputDecls moves declarations of output locals out of the region
// body so that the region's outputs (and a trailing return) are in scope
// outside it. Initializers are preserved by leaving an equivalent
// assignment (or zeroing) in place.
func hoistOutputDecls(prog *minic.Program, s *segment.Segment) []minic.Stmt {
	blk, ok := s.Body.(*minic.Block)
	if !ok {
		return nil
	}
	outLocals := map[*minic.Symbol]bool{}
	for _, o := range s.Outputs {
		if o.Sym.Kind == minic.SymLocal && o.Elem == nil {
			outLocals[o.Sym] = true
		}
	}
	if s.RetOut != nil && s.RetOut.Kind == minic.SymLocal {
		outLocals[s.RetOut] = true
	}
	if len(outLocals) == 0 {
		return nil
	}
	var hoisted []minic.Stmt
	var newStmts []minic.Stmt
	for _, st := range blk.Stmts {
		ds, isDecl := st.(*minic.DeclStmt)
		if !isDecl {
			newStmts = append(newStmts, st)
			continue
		}
		var keep []*minic.VarDecl
		for _, d := range ds.Decls {
			if !outLocals[d.Sym] || d.InitList != nil {
				keep = append(keep, d)
				continue
			}
			init := d.Init
			d.Init = nil
			hoisted = append(hoisted, prog.NewDeclStmt(d))
			// Preserve the initialization (including MiniC's zeroing of
			// uninitialized locals) inside the body.
			if init == nil {
				init = prog.NewIntLit(0)
			}
			newStmts = append(newStmts,
				prog.NewExprStmt(prog.NewAssign(prog.NewIdent(d.Sym), init)))
		}
		if len(keep) > 0 {
			ds.Decls = keep
			newStmts = append(newStmts, ds)
		}
	}
	blk.Stmts = newStmts
	return hoisted
}

// wrap builds the ReuseRegion for s and splices it into the AST.
func wrap(prog *minic.Program, s *segment.Segment, tableID, segBit int, dep bool) *minic.ReuseRegion {
	// For sub-blocks, capture the run's anchor statement before hoisting
	// rewrites the body's statement list.
	var subAnchor minic.Stmt
	if s.Kind == segment.SubBlock {
		subAnchor = s.Body.(*minic.Block).Stmts[0]
	}
	hoisted := hoistOutputDecls(prog, s)
	rr := prog.NewReuseRegion(tableID, segBit, s.Name)
	rr.Body = s.Body
	rr.Dep = dep

	for _, in := range s.Inputs {
		if in.Elem == nil {
			rr.Inputs = append(rr.Inputs, prog.NewIdent(in.Sym))
			continue
		}
		if dep {
			// A dep region declares the whole aggregate as trackable —
			// the watcher narrows to the elements actually read, which
			// may differ from the flat key's single-element pattern.
			rr.Inputs = append(rr.Inputs, prog.NewIdent(in.Sym))
			continue
		}
		rr.Inputs = append(rr.Inputs, prog.NewIndex(prog.NewIdent(in.Sym), prog.CloneExpr(in.Elem)))
	}
	for _, o := range s.Outputs {
		if o.Elem == nil {
			rr.Outputs = append(rr.Outputs, prog.NewIdent(o.Sym))
			continue
		}
		rr.Outputs = append(rr.Outputs, prog.NewIndex(prog.NewIdent(o.Sym), prog.CloneExpr(o.Elem)))
	}

	switch s.Kind {
	case segment.FuncBody:
		// The original function body is [stmts..., trailing return]; the
		// segment body is the trimmed copy. Rebuild the function body as
		// {region; return}.
		orig := s.Fn.Body
		var tail []minic.Stmt
		if len(orig.Stmts) > 0 {
			if ret, ok := orig.Stmts[len(orig.Stmts)-1].(*minic.ReturnStmt); ok {
				tail = []minic.Stmt{ret}
			}
		}
		s.Fn.Body = prog.NewBlock(append(append(hoisted, rr), tail...)...)
	case segment.LoopBody:
		var repl minic.Stmt = rr
		if len(hoisted) > 0 {
			repl = prog.NewBlock(append(hoisted, rr)...)
		}
		switch p := s.Parent.(type) {
		case *minic.WhileStmt:
			p.Body = repl
		case *minic.ForStmt:
			p.Body = repl
		}
	case segment.IfBranch:
		var repl minic.Stmt = rr
		if len(hoisted) > 0 {
			repl = prog.NewBlock(append(hoisted, rr)...)
		}
		p := s.Parent.(*minic.IfStmt)
		if p.Then == s.Body {
			p.Then = repl
		} else if p.Else == s.Body {
			p.Else = repl
		}
	case segment.SubBlock:
		// Splice the run out of the parent block and insert the hoisted
		// declarations plus the region. The run is located by statement
		// identity: prior splices of sibling runs shift indices, but the
		// surviving original statements keep their identity (runs are
		// disjoint).
		blk := s.ParentBlock
		start := -1
		for i, st := range blk.Stmts {
			if st == subAnchor {
				start = i
				break
			}
		}
		if start < 0 {
			panic("transform: sub-block run not found in parent block")
		}
		runLen := s.RunEnd - s.RunStart
		var repl []minic.Stmt
		repl = append(repl, blk.Stmts[:start]...)
		repl = append(repl, hoisted...)
		repl = append(repl, rr)
		repl = append(repl, blk.Stmts[start+runLen:]...)
		blk.Stmts = repl
	}
	return rr
}
