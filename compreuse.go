// Package compreuse is a from-scratch reproduction of
//
//	Yonghua Ding and Zhiyuan Li, "A Compiler Scheme for Reusing
//	Intermediate Computation Results", CGO 2004.
//
// The paper presents a pure-software computation-reuse (memoization)
// scheme: a compiler identifies code segments whose inputs repeat at run
// time, and rewrites each profitable segment into a hash-table look-up
// that skips the computation when the input set has been seen before.
//
// This package is the public face of the reproduction. It exposes:
//
//   - Run / RunSweep: the complete pipeline of the paper's Figure 1 —
//     clean-up, code specialization, interprocedural analyses, code
//     segment analysis, execution-frequency and value-set profiling, the
//     cost–benefit formulas (1)–(4), nested-segment resolution, hash-table
//     merging, and code generation — applied to a MiniC program (a C
//     subset; see internal/minic), measured on a cycle-accounting VM that
//     stands in for the paper's 206 MHz StrongARM iPAQ.
//   - Execute: run a MiniC program on the VM without transformation.
//   - Programs / ProgramByName: the benchmark suite reproducing the
//     paper's evaluation (G721, MPEG2, RASTA, UNEPIC, GNU Go).
//   - Memo / MemoTable: a standalone generic memoization runtime for Go
//     code, built on the same reuse-table design (direct addressing,
//     merged valid bits, LRU emulation).
//   - DepMemo / TieredDepMemo: dependence-tracked selective memoization —
//     the compute runs against a tracked input view and is keyed only on
//     the locations it actually read (a footprint trie), with per-key
//     custom equality (content-hashed slices, tolerance-based floats)
//     and explicit space budgets. The pipeline's Options.DepKeys uses the
//     same machinery to admit segments the flat-key pre-filter rejected.
//
// The executables cmd/crc (compiler driver), cmd/crcrun (VM) and
// cmd/crcbench (regenerates every table and figure of the paper's
// evaluation) are thin wrappers over this API. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package compreuse

import (
	"net/http"

	"compreuse/internal/bench"
	"compreuse/internal/core"
	"compreuse/internal/cost"
	"compreuse/internal/energy"
	"compreuse/internal/interp"
	"compreuse/internal/minic"
	"compreuse/internal/obs"
	"compreuse/internal/opt"
)

// Options configures a pipeline run. See the field documentation in the
// aliased type for details; the zero value plus Name/Source is a sensible
// default (O0, optimal table sizing, merging on).
type Options = core.Options

// Report is the complete outcome of a pipeline run: per-segment decisions,
// profiles, table layouts, baseline and transformed measurements, and the
// transformed source text.
type Report = core.Report

// Decision records what the scheme concluded about one code segment.
type Decision = core.Decision

// DecisionRecord is one line of the pipeline's decision ledger: the
// observed quantities of formulas (1)-(4) for one analyzed segment and the
// accept/reject verdict with its reason. Report.Ledger holds one per
// segment; Report.LedgerJSON serializes it and core.ParseLedger reads it
// back.
type DecisionRecord = core.DecisionRecord

// SweepPoint selects a reuse-table configuration for RunSweep.
type SweepPoint = core.SweepPoint

// SweepOutcome is the measurement at one sweep point.
type SweepOutcome = core.SweepOutcome

// BenchProgram is one program of the paper's evaluation suite.
type BenchProgram = bench.Program

// Run executes the complete computation-reuse scheme on a MiniC program:
// it profiles on opts.MainArgs, transforms the profitable segments, and
// measures the original and transformed programs on the simulated iPAQ.
func Run(opts Options) (*Report, error) { return core.Run(opts) }

// RunSweep runs the scheme once, then re-measures the transformed program
// under each table configuration (the paper's Table 5 and Figures 14/15).
func RunSweep(opts Options, points []SweepPoint) (*Report, []SweepOutcome, error) {
	return core.RunSweep(opts, points)
}

// ExecResult is the outcome of an untransformed VM run.
type ExecResult struct {
	// Ret is main's return value.
	Ret int64
	// Output is everything the program printed.
	Output string
	// Cycles is the modeled cycle count; Seconds the modeled wall time at
	// 206 MHz.
	Cycles  int64
	Seconds float64
	// Joules is the modeled whole-system energy.
	Joules float64
}

// Execute compiles and runs a MiniC program on the cycle-accounting VM
// without any reuse transformation. optLevel is "O0" or "O3".
func Execute(name, source string, args []int64, optLevel string) (*ExecResult, error) {
	prog, err := minic.Parse(name, source)
	if err != nil {
		return nil, err
	}
	if err := minic.Check(prog); err != nil {
		return nil, err
	}
	model := cost.ModelFor(optLevel)
	if model.Name == "O3" {
		opt.Run(prog)
	}
	res, err := interp.Run(prog, interp.Options{Model: model, Args: args})
	if err != nil {
		return nil, err
	}
	m := energy.Measure(res, energy.Default())
	return &ExecResult{
		Ret:     res.Ret,
		Output:  res.Output,
		Cycles:  res.Cycles,
		Seconds: res.Seconds(),
		Joules:  m.Joules,
	}, nil
}

// Programs returns the benchmark suite reproducing the paper's evaluation
// (Mediabench kernels and GNU Go), including the G721 _s/_b variants.
func Programs() []BenchProgram { return bench.All() }

// ProgramByName finds a suite program ("G721_encode", "MPEG2_decode", ...).
func ProgramByName(name string) (BenchProgram, error) { return bench.ByName(name) }

// EnableMetrics turns on the reuse telemetry layer: probe/record counters,
// latency and key-size histograms, table occupancy gauges and pipeline
// decision counters start updating. When disabled (the default), the
// instrumented hot paths pay a single atomic load.
func EnableMetrics() { obs.Enable() }

// DisableMetrics stops all metric updates; collected values remain
// readable.
func DisableMetrics() { obs.Disable() }

// MetricsEnabled reports whether the telemetry layer is live.
func MetricsEnabled() bool { return obs.On() }

// MetricsHandler serves the collected metrics: /metrics (Prometheus text
// format), /metrics.json, /traces, /debug/vars (expvar) and /debug/pprof.
// The crcbench serve subcommand mounts this same handler.
func MetricsHandler() http.Handler { return obs.Handler() }

// EnableTracing turns on the request-tracing layer: every sampleEvery-th
// TieredMemo.Do (1 = all) records a trace — spans for the L1/L2/pool
// levels it traverses, stitched across the wire to the serving crcserve
// node — into a fixed ring of capacity spans (0 = a reasonable default),
// readable at the /traces endpoint of MetricsHandler. When disabled (the
// default), the traced hot paths pay a single atomic load.
func EnableTracing(sampleEvery, capacity int) { obs.EnableTrace(sampleEvery, capacity) }

// DisableTracing stops recording spans; the ring remains readable.
func DisableTracing() { obs.DisableTrace() }

// TracingEnabled reports whether the span recorder is live.
func TracingEnabled() bool { return obs.TraceOn() }
