package compreuse_test

import (
	"fmt"

	"compreuse"
)

// ExampleRun applies the whole scheme to the paper's running example: the
// G.721 quantizer quan, specialized and memoized automatically.
func ExampleRun() {
	src := `
int power2[15] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384};

int quan(int val, int *table, int size) {
    int i;
    for (i = 0; i < size; i++)
        if (val < table[i])
            break;
    return (i);
}

int main(int seed, int n) {
    int s = 0;
    int x = seed;
    int v;
    for (v = 0; v < n; v++) {
        x = (x * 75 + 74) & 1023;
        s += quan(x, power2, 15);
    }
    return s & 255;
}
`
	rep, err := compreuse.Run(compreuse.Options{
		Name: "quan.c", Source: src, MainArgs: []int64{7, 8000},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("specialized: %v\n", rep.Specialized)
	fmt.Printf("transformed: %d segment(s)\n", rep.SegmentsTransformed)
	fmt.Printf("results equal: %v\n", rep.Baseline.Ret == rep.Reuse.Ret)
	fmt.Printf("faster: %v\n", rep.Reuse.Cycles < rep.Baseline.Cycles)
	// Output:
	// specialized: [quan__spec1]
	// transformed: 1 segment(s)
	// results equal: true
	// faster: true
}

// ExampleMemo memoizes a pure Go function with the reuse-table runtime.
func ExampleMemo() {
	square, stats := compreuse.Memo(func(x int) int { return x * x })
	for i := 0; i < 100; i++ {
		square(i % 4)
	}
	fmt.Printf("calls=%d distinct=%d hits=%d\n", stats.Calls, stats.Distinct, stats.Hits)
	fmt.Printf("reuse rate R = %.2f\n", stats.ReuseRate())
	// Output:
	// calls=100 distinct=4 hits=96
	// reuse rate R = 0.96
}

// ExampleDepMemo memoizes on the dependence footprint: the lookup is
// keyed on the one table entry the computation read, so calls differing
// only in the rest of the table still hit.
func ExampleDepMemo() {
	m := compreuse.NewDepMemo(compreuse.DepConfig{Name: "route"})
	lookups := 0
	route := func(d *compreuse.Dep) uint64 {
		lookups++
		dest := d.Get(0)            // which destination
		return d.Word(1, int(dest)) // read ONLY that route entry
	}

	table := []uint64{100, 200, 300, 400}
	var in compreuse.DepInputs
	fmt.Println(m.Do(in.Reset().Int(2).Words(table), route))

	// Entries 0, 1 and 3 change; entry 2 — the only one read — did not.
	table2 := []uint64{111, 222, 300, 444}
	fmt.Println(m.Do(in.Reset().Int(2).Words(table2), route))
	fmt.Printf("lookups=%d hits=%d footprint=%.0f words\n",
		lookups, m.Stats().Hits, m.Stats().MeanFootprint)
	// Output:
	// 300
	// 300
	// lookups=1 hits=1 footprint=2 words
}

// ExampleExecute runs a MiniC program on the simulated 206 MHz iPAQ.
func ExampleExecute() {
	res, err := compreuse.Execute("hello.c", `
int main(void) {
    print_str("hello from the iPAQ");
    print_int(6 * 7);
    return 0;
}`, nil, "O0")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(res.Output)
	fmt.Printf("measured some cycles: %v\n", res.Cycles > 0)
	// Output:
	// hello from the iPAQ
	// 42
	// measured some cycles: true
}
