package compreuse

import (
	"sync"
	"sync/atomic"
	"time"

	"compreuse/internal/obs"
)

// TieredMemoConfig sizes a TieredMemo.
type TieredMemoConfig struct {
	// Name is the shared segment name on the server; every process in
	// the fleet using the same name shares one L2 table.
	Name string
	// L1Entries bounds the process-local L1 table (0 = unbounded).
	L1Entries int
	// L1LRU selects LRU replacement for a bounded L1.
	L1LRU bool
	// L1Shards stripes the L1 for parallel callers (0 = 1).
	L1Shards int
	// Remote configures the server-side table (Entries/LRU; OutWords
	// is forced to 1 — TieredMemo caches single-word values).
	Remote SegmentConfig
}

// TieredStats counts where a TieredMemo's calls were served from.
type TieredStats struct {
	// Calls is the number of Do invocations.
	Calls int64
	// L1Hits were served from the process-local table — no round trip.
	L1Hits int64
	// L2Hits were served from the shared remote table — one RTT, no
	// computation.
	L2Hits int64
	// Computes ran the computation (remote miss, bypass, or error).
	Computes int64
	// Bypassed is the subset of Computes short-circuited by the
	// governor's BYPASS verdict (locally cached or fresh).
	Bypassed int64
	// Errors is the subset of Computes taken because the remote tier
	// failed; the caller still got a value, computed locally.
	Errors int64
}

// TieredMemo layers a process-local MemoTable (L1) over a remote
// crcserve segment (L2): an L1 hit costs a hash probe, an L2 hit costs
// one round trip, and only a fleet-wide first encounter of a key pays
// the computation — a warm fleet shares every distinct result. The
// remote tier degrades gracefully: on server errors, and for segments
// the admission governor has bypassed (a round trip is only worth
// paying while R·C − O > 0 holds on the server's live numbers), Do
// simply computes locally.
type TieredMemo struct {
	l1    *MemoTable
	seg   remoteCache
	stats [6]atomic.Int64 // mirrors TieredStats field order

	// sf deduplicates concurrent misses on one key: the first caller
	// (the leader) does the remote GET and, on a fleet-wide miss, the
	// compute; everyone else waits for the leader's value — one round
	// trip and one computation per in-flight key, not one per caller.
	sfMu sync.Mutex
	sf   map[string]*tieredCall
}

// remoteCache is the L2 surface TieredMemo drives: a single crcserve
// segment (RemoteSegment) or a consistent-hash fleet of them
// (PoolSegment). Both degrade to errors rather than blocking, which is
// all Do's never-fails contract needs.
type remoteCache interface {
	Get(key []byte) ([]uint64, GetStatus, error)
	GetTraced(key []byte, tr obs.TraceCtx) ([]uint64, GetStatus, error)
	Put(key []byte, vals []uint64, cost time.Duration) error
	PutTraced(key []byte, vals []uint64, cost time.Duration, tr obs.TraceCtx) error
	Stats() (RemoteStats, error)
	Flush() error
}

// tieredCall is one in-flight Do: the leader closes done after storing
// val, and every follower reads val afterwards. ok is set only on
// normal completion — a follower that wakes to !ok knows the leader
// panicked and retries instead of returning the zero value.
type tieredCall struct {
	done chan struct{}
	val  uint64
	ok   bool
}

const (
	tsCalls = iota
	tsL1Hits
	tsL2Hits
	tsComputes
	tsBypassed
	tsErrors
)

// NewTieredMemo registers the segment on the server and builds the
// two-level table.
func NewTieredMemo(c *Client, cfg TieredMemoConfig) (*TieredMemo, error) {
	remote := cfg.Remote
	remote.OutWords = 1
	seg, err := c.Segment(cfg.Name, remote)
	if err != nil {
		return nil, err
	}
	return newTieredMemo(seg, cfg), nil
}

// NewTieredMemoFleet builds a TieredMemo whose L2 is a sharded crcserve
// fleet instead of a single node: keys route by consistent hash, PUTs
// replicate, and reads fail over to the next ring node when the primary
// errors. The Do/Stats/Reset surface is identical to the single-node
// TieredMemo.
func NewTieredMemoFleet(p *Pool, cfg TieredMemoConfig) (*TieredMemo, error) {
	remote := cfg.Remote
	remote.OutWords = 1
	seg, err := p.Segment(cfg.Name, remote)
	if err != nil {
		return nil, err
	}
	return newTieredMemo(seg, cfg), nil
}

func newTieredMemo(seg remoteCache, cfg TieredMemoConfig) *TieredMemo {
	return &TieredMemo{
		l1: NewMemoTable(MemoTableConfig{
			Name:    cfg.Name + "/l1",
			Entries: cfg.L1Entries,
			LRU:     cfg.L1LRU,
			Shards:  cfg.L1Shards,
		}),
		seg: seg,
	}
}

// Do returns the value for key, from L1, then L2, then by running
// compute. A computed value is recorded in both tiers together with its
// measured cost C (unless the governor has bypassed the segment). Do
// never fails: remote errors are counted and absorbed by computing
// locally. Safe for concurrent use; concurrent misses on one key
// singleflight — one remote GET and at most one compute run however
// many callers pile onto the key — and the followers count as L1 hits,
// since they are served from another caller's in-flight work.
func (t *TieredMemo) Do(key []byte, compute func() uint64) uint64 {
	// The root span of the request's trace. With tracing disabled (the
	// default) StartRoot is one atomic load returning an inert zero Span
	// and every method on it no-ops — the L1-hit path stays 0 allocs/op
	// (pinned by TestTieredMemoL1HitZeroAlloc).
	root := obs.StartRoot("tiered.do")
	t.stats[tsCalls].Add(1)
	if v, ok := t.l1.Lookup(key); ok {
		t.stats[tsL1Hits].Add(1)
		root.Outcome("l1_hit")
		root.End()
		return v
	}

	ks := string(key)
	for {
		t.sfMu.Lock()
		if c, ok := t.sf[ks]; ok {
			t.sfMu.Unlock()
			<-c.done
			if !c.ok {
				// The leader's compute panicked; its val is garbage.
				// Retry — this follower likely becomes the next leader
				// and runs (or panics out of) its own compute.
				continue
			}
			t.stats[tsL1Hits].Add(1)
			root.Outcome("coalesced")
			root.End()
			return c.val
		}
		c := &tieredCall{done: make(chan struct{})}
		if t.sf == nil {
			t.sf = map[string]*tieredCall{}
		}
		t.sf[ks] = c
		t.sfMu.Unlock()

		// Delete-and-close runs in a defer: compute is user code and may
		// panic, and a leaked map entry with an unclosed done would park
		// every follower (and every future caller of this key) forever.
		// The panic is not recovered — it propagates to the leader's
		// caller, exactly as an un-memoized compute() would.
		func() {
			defer func() {
				t.sfMu.Lock()
				delete(t.sf, ks)
				t.sfMu.Unlock()
				close(c.done)
			}()
			c.val = t.doMiss(key, compute, &root)
			c.ok = true
		}()
		root.End()
		return c.val
	}
}

// doMiss is the leader's slow path: L2 probe, then compute, recording
// the result in both tiers. root is the request's trace span: the L2
// probe and PUT stitch into it across the wire, the compute becomes a
// child span, and the root's outcome records which level served the
// request.
func (t *TieredMemo) doMiss(key []byte, compute func() uint64, root *obs.Span) uint64 {
	vals, status, err := t.seg.GetTraced(key, root.Context())
	switch {
	case err == nil && status == Hit && len(vals) > 0:
		t.stats[tsL2Hits].Add(1)
		t.l1.Store(key, vals[0])
		root.Outcome("l2_hit")
		return vals[0]
	case err != nil:
		t.stats[tsErrors].Add(1)
		root.Outcome("l2_err")
	case status == Bypass:
		t.stats[tsBypassed].Add(1)
		root.Outcome("bypass")
	default:
		root.Outcome("compute")
	}

	t.stats[tsComputes].Add(1)
	csp := obs.StartSpan(root.Context(), "compute")
	start := time.Now()
	v := compute()
	cost := time.Since(start)
	csp.End()
	t.l1.Store(key, v)
	if err == nil && status == Miss {
		// Report C with the PUT: the server's governor weighs exactly
		// this cost against the overhead O of serving the segment.
		if perr := t.seg.PutTraced(key, []uint64{v}, cost, root.Context()); perr != nil {
			t.stats[tsErrors].Add(1)
		}
	}
	return v
}

// Stats returns a snapshot of the tier counters.
func (t *TieredMemo) Stats() TieredStats {
	return TieredStats{
		Calls:    t.stats[tsCalls].Load(),
		L1Hits:   t.stats[tsL1Hits].Load(),
		L2Hits:   t.stats[tsL2Hits].Load(),
		Computes: t.stats[tsComputes].Load(),
		Bypassed: t.stats[tsBypassed].Load(),
		Errors:   t.stats[tsErrors].Load(),
	}
}

// L1Stats returns the local table's counters.
func (t *TieredMemo) L1Stats() MemoStats { return t.l1.Stats() }

// RemoteStats fetches the shared segment's live server-side counters.
func (t *TieredMemo) RemoteStats() (RemoteStats, error) { return t.seg.Stats() }

// Reset drops both tiers: the local table is emptied in place and the
// server-side segment is flushed (which also readmits it).
func (t *TieredMemo) Reset() error {
	t.l1.Reset()
	for i := range t.stats {
		t.stats[i].Store(0)
	}
	return t.seg.Flush()
}
