package compreuse

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compreuse/internal/obs"
)

var errRemoteDown = errors.New("remote tier down")

// TestDepMemoFootprintKeying pins the point of the subsystem: calls
// differing only in inputs the computation never read share one result.
func TestDepMemoFootprintKeying(t *testing.T) {
	m := NewDepMemo(DepConfig{Name: "fp"})
	computes := 0
	// Reads input 0 (a mode flag); reads element [mode] of the words
	// input only — the rest of the slice is never examined.
	f := func(d *Dep) uint64 {
		computes++
		mode := d.Get(0)
		return d.Word(1, int(mode)) * 2
	}

	w := []uint64{10, 20, 30, 40}
	var in DepInputs
	if got := m.Do(in.Reset().Int(1).Words(w), f); got != 40 {
		t.Fatalf("first call = %d", got)
	}
	// Mutating untouched elements must still hit.
	w2 := []uint64{999, 20, 888, 777}
	if got := m.Do(in.Reset().Int(1).Words(w2), f); got != 40 {
		t.Fatalf("untouched-element change missed: %d", got)
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	// Changing the touched element misses.
	w3 := []uint64{999, 21, 888, 777}
	if got := m.Do(in.Reset().Int(1).Words(w3), f); got != 42 {
		t.Fatalf("touched-element change = %d", got)
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2", computes)
	}

	st := m.Stats()
	if st.Calls != 3 || st.Hits != 1 || st.Distinct != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MeanFootprint != 2 {
		t.Fatalf("mean footprint %v, want 2", st.MeanFootprint)
	}
}

// TestDepMemoEmptyFootprint pins the constant-result edge case: a
// compute that reads nothing matches every later call.
func TestDepMemoEmptyFootprint(t *testing.T) {
	m := NewDepMemo(DepConfig{})
	computes := 0
	f := func(d *Dep) uint64 { computes++; return 7 }
	var in DepInputs
	for i := int64(0); i < 5; i++ {
		if got := m.Do(in.Reset().Int(i), f); got != 7 {
			t.Fatalf("call %d = %d", i, got)
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	if st := m.Stats(); st.Hits != 4 || st.MaxFootprint != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDepMemoFootprintWidening pins conflict resolution across runs: if
// the compute function's read-set widens at a resident leaf (e.g. the
// function changed between deployments of a shared memo), the newer
// record wins and the stale narrow result stops hitting.
func TestDepMemoFootprintWidening(t *testing.T) {
	m := NewDepMemo(DepConfig{})
	var in DepInputs
	narrow := func(d *Dep) uint64 { return uint64(d.Get(0)) }
	wide := func(d *Dep) uint64 { return uint64(d.Get(0)) + uint64(d.Get(1))*100 }

	if got := m.Do(in.Reset().Int(5).Int(3), narrow); got != 5 {
		t.Fatalf("narrow = %d", got)
	}
	// Force the wide compute under the same first read. The resident
	// narrow leaf is displaced, not blended.
	m.Reset()
	if got := m.Do(in.Reset().Int(5).Int(3), wide); got != 305 {
		t.Fatalf("wide = %d", got)
	}
	if got := m.Do(in.Reset().Int(5).Int(4), wide); got != 405 {
		t.Fatalf("wide sibling = %d", got)
	}
	if got := m.Do(in.Reset().Int(5).Int(3), wide); got != 305 {
		t.Fatalf("wide rehit = %d", got)
	}
	if st := m.Stats(); st.Hits != 1 || st.Distinct != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDepMemoBytesContentKey pins slice-content equality: equal content
// in different backing arrays hits; different content misses.
func TestDepMemoBytesContentKey(t *testing.T) {
	m := NewDepMemo(DepConfig{})
	computes := 0
	f := func(d *Dep) uint64 {
		computes++
		b := d.Bytes(0)
		var s uint64
		for _, c := range b {
			s += uint64(c)
		}
		return s
	}
	var in DepInputs
	a := []byte("hello world")
	b := append([]byte(nil), a...) // same content, different array
	v1 := m.Do(in.Reset().Bytes(a), f)
	v2 := m.Do(in.Reset().Bytes(b), f)
	if v1 != v2 || computes != 1 {
		t.Fatalf("content equality failed: %d %d computes=%d", v1, v2, computes)
	}
	b[0] = 'H'
	if got := m.Do(in.Reset().Bytes(b), f); got == v1 || computes != 2 {
		t.Fatalf("content change: %d computes=%d", got, computes)
	}
}

// TestDepMemoFloatTolerance pins grid equality: floats in one tolerance
// cell share a result, floats in different cells do not.
func TestDepMemoFloatTolerance(t *testing.T) {
	m := NewDepMemo(DepConfig{FloatTolerance: 0.1})
	computes := 0
	f := func(d *Dep) uint64 { computes++; return uint64(d.Float(0) * 1000) }
	var in DepInputs
	m.Do(in.Reset().Float(1.00), f)
	m.Do(in.Reset().Float(1.04), f) // same cell (rounds to 10)
	if computes != 1 {
		t.Fatalf("tolerance miss: computes=%d", computes)
	}
	m.Do(in.Reset().Float(1.17), f) // cell 12
	if computes != 2 {
		t.Fatalf("distinct cell hit: computes=%d", computes)
	}
	// Exact mode (tolerance 0) distinguishes near-equal floats.
	m2 := NewDepMemo(DepConfig{})
	computes = 0
	m2.Do(in.Reset().Float(1.00), f)
	m2.Do(in.Reset().Float(1.0000001), f)
	if computes != 2 {
		t.Fatalf("exact mode collapsed: computes=%d", computes)
	}
}

// TestDepMemoBudgetEviction pins the space budget: resident results
// never exceed Budget, the LRU result leaves first, and an evicted
// result recomputes correctly.
func TestDepMemoBudgetEviction(t *testing.T) {
	m := NewDepMemo(DepConfig{Budget: 4})
	f := func(d *Dep) uint64 { return uint64(d.Get(0)) * 3 }
	var in DepInputs
	for i := int64(0); i < 16; i++ {
		if got := m.Do(in.Reset().Int(i), f); got != uint64(i)*3 {
			t.Fatalf("Do(%d) = %d", i, got)
		}
	}
	st := m.Stats()
	if st.Resident != 4 || st.Evictions != 12 {
		t.Fatalf("stats: %+v", st)
	}
	// The last four are resident; older ones recompute (still correct).
	for i := int64(12); i < 16; i++ {
		if got := m.Do(in.Reset().Int(i), f); got != uint64(i)*3 {
			t.Fatalf("resident Do(%d) = %d", i, got)
		}
	}
	if st2 := m.Stats(); st2.Hits != st.Hits+4 {
		t.Fatalf("resident probes missed: %+v vs %+v", st2, st)
	}
	if got := m.Do(in.Reset().Int(0), f); got != 0 {
		t.Fatalf("evicted recompute = %d", got)
	}
}

// TestDepMemoSingleflight drives concurrent identical misses through a
// slow compute under -race: the compute runs once, everyone gets the
// value, and followers count as hits.
func TestDepMemoSingleflight(t *testing.T) {
	m := NewDepMemo(DepConfig{})
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	f := func(d *Dep) uint64 {
		if computes.Add(1) == 1 {
			close(started)
			<-release
		}
		return uint64(d.Get(0)) + 100
	}

	const callers = 8
	var wg sync.WaitGroup
	results := make([]uint64, callers)
	// Leader first, so the followers deterministically find its flight.
	wg.Add(1)
	go func() { defer wg.Done(); results[0] = m.Do(new(DepInputs).Int(7), f) }()
	<-started
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = m.Do(new(DepInputs).Int(7), f)
		}(i)
	}
	// Give followers time to join the flight, then release the leader.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, v := range results {
		if v != 107 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want 1 (singleflight)", n)
	}
	st := m.Stats()
	if st.Calls != callers || st.Hits != callers-1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDepMemoSingleflightPanic: a panicking leader releases followers,
// who compute for themselves; the panic propagates to the leader's
// caller.
func TestDepMemoSingleflightPanic(t *testing.T) {
	m := NewDepMemo(DepConfig{})
	var boom atomic.Bool
	boom.Store(true)
	started := make(chan struct{})
	release := make(chan struct{})
	f := func(d *Dep) uint64 {
		v := d.Get(0)
		if boom.CompareAndSwap(true, false) {
			close(started)
			<-release
			panic("compute failed")
		}
		return uint64(v) + 1
	}

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		m.Do(new(DepInputs).Int(3), f)
	}()
	<-started

	done := make(chan uint64, 1)
	go func() { done <- m.Do(new(DepInputs).Int(3), f) }()
	time.Sleep(5 * time.Millisecond)
	close(release)

	if p := <-panicked; p == nil {
		t.Fatal("leader panic did not propagate")
	}
	select {
	case v := <-done:
		if v != 4 {
			t.Fatalf("follower got %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower hung after leader panic")
	}
}

// TestDepMemoConcurrentChurn hammers a bounded memo from many
// goroutines under -race: distinct footprints, shared footprints, and
// eviction churn at once, with every result checked.
func TestDepMemoConcurrentChurn(t *testing.T) {
	m := NewDepMemo(DepConfig{Budget: 32})
	f := func(d *Dep) uint64 {
		mode := d.Get(0)
		if mode == 0 {
			return 1
		}
		return uint64(mode) + uint64(d.Get(1))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var in DepInputs
			for i := 0; i < 500; i++ {
				mode := int64(i % 5)
				other := int64(i % 17)
				got := m.Do(in.Reset().Int(mode).Int(other), f)
				want := uint64(mode) + uint64(other)
				if mode == 0 {
					want = 1
				}
				if got != want {
					t.Errorf("g%d i%d: got %d want %d", g, i, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := m.Stats(); st.Resident > 32 {
		t.Fatalf("budget exceeded: %+v", st)
	}
}

func TestDepMemoReset(t *testing.T) {
	m := NewDepMemo(DepConfig{Budget: 8})
	computes := 0
	f := func(d *Dep) uint64 { computes++; return uint64(d.Get(0)) }
	var in DepInputs
	m.Do(in.Reset().Int(1), f)
	m.Do(in.Reset().Int(1), f)
	m.Reset()
	if st := m.Stats(); st.Calls != 0 || st.Hits != 0 || st.Distinct != 0 || st.Resident != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
	if m.Do(in.Reset().Int(1), f); computes != 2 {
		t.Fatalf("post-reset hit leaked: computes=%d", computes)
	}
}

// ---------------------------------------------------------------------------
// Tiered

// memRemote is an in-memory remoteCache double.
type memRemote struct {
	mu   sync.Mutex
	m    map[string]uint64
	gets int
	puts int
	fail bool
}

func newMemRemote() *memRemote { return &memRemote{m: map[string]uint64{}} }

func (f *memRemote) Get(key []byte) ([]uint64, GetStatus, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return nil, Miss, errRemoteDown
	}
	f.gets++
	if v, ok := f.m[string(key)]; ok {
		return []uint64{v}, Hit, nil
	}
	return nil, Miss, nil
}

func (f *memRemote) GetTraced(key []byte, tr obs.TraceCtx) ([]uint64, GetStatus, error) {
	return f.Get(key)
}

func (f *memRemote) Put(key []byte, vals []uint64, cost time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return errRemoteDown
	}
	f.puts++
	f.m[string(key)] = vals[0]
	return nil
}

func (f *memRemote) PutTraced(key []byte, vals []uint64, cost time.Duration, tr obs.TraceCtx) error {
	return f.Put(key, vals, cost)
}

func (f *memRemote) Stats() (RemoteStats, error) { return RemoteStats{}, nil }
func (f *memRemote) Flush() error                { return nil }

// TestTieredDepMemoGhostRefill pins the eviction-recovery tier: a
// budget-evicted result's ghost key fetches the value back from the
// remote tier instead of recomputing.
func TestTieredDepMemoGhostRefill(t *testing.T) {
	remote := newMemRemote()
	tm := newTieredDepMemo(remote, TieredDepMemoConfig{Name: "tier", Budget: 2})
	var computes atomic.Int64
	f := func(d *Dep) uint64 { computes.Add(1); return uint64(d.Get(0)) * 10 }

	var in DepInputs
	for i := int64(0); i < 5; i++ {
		if got := tm.Do(in.Reset().Int(i), f); got != uint64(i)*10 {
			t.Fatalf("Do(%d) = %d", i, got)
		}
	}
	// 0..2 were evicted; the ghost arena shares the budget, so the two
	// most recent ghosts (1 and 2) are retained. Their values are on the
	// remote tier.
	before := computes.Load()
	if got := tm.Do(in.Reset().Int(2), f); got != 20 {
		t.Fatalf("refill Do(2) = %d", got)
	}
	if computes.Load() != before {
		t.Fatal("ghost refill recomputed instead of remote GET")
	}
	st := tm.Stats()
	if st.GhostHits != 1 || st.Computes != 5 {
		t.Fatalf("tier stats: %+v", st)
	}
	// The refilled result is a plain L1 hit now.
	if got := tm.Do(in.Reset().Int(2), f); got != 20 {
		t.Fatalf("post-refill Do(2) = %d", got)
	}
	if st := tm.Stats(); st.L1Hits != 1 {
		t.Fatalf("post-refill stats: %+v", st)
	}
}

// TestTieredDepMemoConcurrentGhosts: concurrent ghost probes must not
// share key storage across the lock drop for the remote round trip — a
// shared scratch buffer lets one goroutine's remote Get read a key a
// second goroutine is already overwriting, returning the wrong segment's
// value. Budget far below the key space keeps the ghost path hot.
func TestTieredDepMemoConcurrentGhosts(t *testing.T) {
	remote := newMemRemote()
	tm := newTieredDepMemo(remote, TieredDepMemoConfig{Name: "conc", Budget: 2})
	f := func(d *Dep) uint64 { return uint64(d.Get(0)) * 10 }

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var in DepInputs
			// Cycle of 3 over budget 2: in steady state every access
			// misses the resident pair but matches the just-evicted
			// ghost, so the ghost path stays hot under any scheduling.
			for i := 0; i < 2000; i++ {
				k := int64((w + i) % 3)
				if got := tm.Do(in.Reset().Int(k), f); got != uint64(k)*10 {
					errs <- fmt.Errorf("worker %d: Do(%d) = %d", w, k, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := tm.Stats(); st.GhostHits == 0 {
		t.Fatalf("ghost path never exercised: %+v", st)
	}
}

// TestTieredDepMemoRemoteDown: with the remote tier failing, Do still
// never fails — it computes locally and counts the errors.
func TestTieredDepMemoRemoteDown(t *testing.T) {
	remote := newMemRemote()
	remote.fail = true
	tm := newTieredDepMemo(remote, TieredDepMemoConfig{Name: "down", Budget: 2})
	f := func(d *Dep) uint64 { return uint64(d.Get(0)) + 1 }
	var in DepInputs
	for i := int64(0); i < 4; i++ {
		if got := tm.Do(in.Reset().Int(i), f); got != uint64(i)+1 {
			t.Fatalf("Do(%d) = %d", i, got)
		}
	}
	st := tm.Stats()
	if st.Computes != 4 || st.Errors != 4 {
		t.Fatalf("stats: %+v", st)
	}
}
