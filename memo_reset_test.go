package compreuse

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoizedReset checks that Reset drops cached values (the function
// runs again) and zeroes the statistics.
func TestMemoizedReset(t *testing.T) {
	var runs atomic.Int64
	m := NewMemoized(func(k int) int {
		runs.Add(1)
		return k * k
	})
	for i := 0; i < 8; i++ {
		m.Call(i % 4)
	}
	if got := runs.Load(); got != 4 {
		t.Fatalf("runs before reset = %d, want 4", got)
	}
	if st := m.Stats(); st.Calls != 8 || st.Hits != 4 || st.Distinct != 4 {
		t.Fatalf("stats before reset = %+v", st)
	}

	m.Reset()
	if st := m.Stats(); st != (MemoStats{}) {
		t.Errorf("stats after reset = %+v", st)
	}
	if got := m.Call(2); got != 4 {
		t.Errorf("Call(2) = %d after reset", got)
	}
	if got := runs.Load(); got != 5 {
		t.Errorf("runs after reset = %d, want 5 (cache was not dropped)", got)
	}
}

// TestMemoized2Reset exercises the two-argument handle.
func TestMemoized2Reset(t *testing.T) {
	var runs atomic.Int64
	m := NewMemoized2(func(a, b int) int {
		runs.Add(1)
		return a + b
	})
	m.Call(1, 2)
	m.Call(1, 2)
	if runs.Load() != 1 {
		t.Fatalf("runs = %d before reset", runs.Load())
	}
	m.Reset()
	m.Call(1, 2)
	if runs.Load() != 2 {
		t.Errorf("runs = %d after reset, want 2", runs.Load())
	}
	if st := m.Stats(); st.Calls != 1 || st.Distinct != 1 {
		t.Errorf("stats after reset+call = %+v", st)
	}
}

// TestMemoTableReset checks MemoTable.Reset empties storage and stats.
func TestMemoTableReset(t *testing.T) {
	mt := NewMemoTable(MemoTableConfig{Name: "reset", Entries: 32, LRU: true, Shards: 2})
	for i := int64(0); i < 16; i++ {
		key := EncodeInt(nil, i)
		if _, ok := mt.Lookup(key); !ok {
			mt.Store(key, uint64(i))
		}
	}
	if mt.Resident() == 0 {
		t.Fatal("table empty before reset")
	}
	mt.Reset()
	if mt.Resident() != 0 {
		t.Errorf("resident = %d after reset", mt.Resident())
	}
	if st := mt.Stats(); st != (MemoStats{}) {
		t.Errorf("stats after reset = %+v", st)
	}
	if _, ok := mt.Lookup(EncodeInt(nil, 3)); ok {
		t.Error("stale entry survived reset")
	}
}

// TestMemoizedResetConcurrent races Reset against callers under -race.
func TestMemoizedResetConcurrent(t *testing.T) {
	m := NewMemoized(func(k int) int { return k })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if got := m.Call(i % 64); got != i%64 {
					t.Errorf("Call(%d) = %d", i%64, got)
					return
				}
			}
		}()
	}
	for r := 0; r < 100; r++ {
		m.Reset()
	}
	close(stop)
	wg.Wait()
}
