// Command crcserve is the remote reuse-cache tier: one process holding
// the paper's reuse tables and serving them over TCP (internal/wire
// protocol) to a fleet of workers, each of which would otherwise
// re-discover the same distinct input patterns on its own. The online
// admission governor applies the paper's formula 3 (R·C − O > 0) per
// segment against live numbers — hit rates R from the shared tables,
// computation costs C reported by clients, overhead O measured from
// probe latency plus client round trips — and bypasses segments that
// stop paying for their round trip.
//
// Usage:
//
//	crcserve                        # listen on :8345, metrics on :8346
//	crcserve -addr :9000 -max-conns 512 -mem-budget 268435456
//	crcserve loadgen -addr host:8345 -dur 5s   # hammer a running server
//
// SIGINT/SIGTERM drain gracefully: the listener closes, responses to
// every request already received are flushed, then the process exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"compreuse"
	"compreuse/internal/core"
	"compreuse/internal/obs"
	"compreuse/internal/reused"
	"compreuse/internal/sigctx"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		rep, err := loadgenRun(os.Args[2:], os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		rep.print(os.Stdout)
		return
	}
	if err := run(os.Args[1:], os.Stderr, nil); err != nil && err != flag.ErrHelp {
		fmt.Fprintf(os.Stderr, "crcserve: %v\n", err)
		os.Exit(1)
	}
}

// removeStaleSocket unlinks a leftover socket file so a restart after
// an unclean exit can bind again. It refuses to remove anything that is
// not a socket — a mistyped -addr must not delete a regular file.
func removeStaleSocket(path string) error {
	info, err := os.Lstat(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if info.Mode()&os.ModeSocket == 0 {
		return fmt.Errorf("unix socket path %q exists and is not a socket", path)
	}
	return os.Remove(path)
}

// parsePriorRecords extracts decision records from any of the JSON
// shapes a deployment has at hand: a bare ledger array
// (Report.LedgerJSON), the /decisions document of a crcbench serve run
// (run key → ledger), or a full `crcbench -json` export (records under
// runs.*.ledger). Later records for a segment name win, which for the
// export means later run keys — the shapes are per-program ledgers, so
// collisions are same-named segments from different programs and any
// of them is an acceptable prior.
func parsePriorRecords(data []byte) ([]core.DecisionRecord, error) {
	if recs, err := core.ParseLedger(data); err == nil {
		return recs, nil
	}
	var byRun map[string]json.RawMessage
	if err := json.Unmarshal(data, &byRun); err != nil {
		return nil, fmt.Errorf("decision ledger: not a record array or a keyed document")
	}
	if raw, ok := byRun["runs"]; ok { // crcbench -json export
		var runs map[string]struct {
			Ledger []core.DecisionRecord `json:"ledger"`
		}
		if err := json.Unmarshal(raw, &runs); err != nil {
			return nil, fmt.Errorf("decision ledger: runs: %w", err)
		}
		keys := make([]string, 0, len(runs))
		for k := range runs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var recs []core.DecisionRecord
		for _, k := range keys {
			recs = append(recs, runs[k].Ledger...)
		}
		return recs, nil
	}
	// /decisions: run key → ledger array.
	keys := make([]string, 0, len(byRun))
	for k := range byRun {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var recs []core.DecisionRecord
	for _, k := range keys {
		var l []core.DecisionRecord
		if err := json.Unmarshal(byRun[k], &l); err != nil {
			return nil, fmt.Errorf("decision ledger: %s: %w", k, err)
		}
		recs = append(recs, l...)
	}
	return recs, nil
}

// run starts the server and blocks until SIGINT/SIGTERM has been
// received and the drain finished (returning nil), or a hard error
// occurs. ready, when non-nil, is called with the cache listener's
// address once the server is accepting — the tests use it to serve on
// port 0.
func run(args []string, logw io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("crcserve", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", "localhost:8345",
		"cache listen address: host:port for TCP, or unix:///path/to.sock")
	httpAddr := fs.String("http", "localhost:8346",
		"metrics/debug HTTP listen address (/metrics, /decisions, /debug/pprof); empty disables")
	maxConns := fs.Int("max-conns", reused.DefaultMaxConns, "max simultaneous client connections")
	maxInflight := fs.Int("max-inflight", reused.DefaultMaxInflight,
		"per-connection pipelined-request bound (backpressure beyond it)")
	memBudget := fs.Int64("mem-budget", 0, "modeled bytes across all segment tables; 0 = unlimited")
	shards := fs.Int("shards", 0, "lock stripes per segment table; 0 = near GOMAXPROCS")
	govWindow := fs.Int("gov-window", reused.DefaultWindow,
		"probes between admission-governor evaluations; negative disables the governor")
	govProbation := fs.Int("gov-probation", reused.DefaultProbation,
		"bypassed requests before a segment is readmitted")
	priorsPath := fs.String("priors", "",
		"decision-ledger JSON (crcbench -json decisions, or /decisions of a pipeline run) whose "+
			"static reuse estimates seed the admission governor: a cold segment with R-hat*C - O > 0 "+
			"is admitted without probing")
	coldProbation := fs.Bool("cold-probation", false,
		"start cold segments WITHOUT a positive-gain prior in bypass (probationary) instead of admitted")
	drain := fs.Duration("drain", reused.DefaultDrainGrace,
		"how long to keep serving connected clients after SIGINT/SIGTERM")
	snapshot := fs.String("snapshot", "",
		"warm-snapshot file: restored at startup, rewritten periodically and at drain; empty disables")
	snapshotEvery := fs.Duration("snapshot-every", reused.DefaultSnapshotEvery,
		"interval between periodic snapshots (with -snapshot)")
	traceEvery := fs.Int("trace-every", 0,
		"record a server span for every Nth traced request into /traces (1 = all, 0 disables)")
	peers := fs.String("peers", "",
		"comma-separated metric addresses (host:port) of peer crcserve nodes, merged into /fleet.json")
	quiet := fs.Bool("q", false, "suppress governor-decision logging")
	if err := fs.Parse(args); err != nil {
		return err
	}

	obs.Enable()
	if *traceEvery > 0 {
		obs.EnableTrace(*traceEvery, 0)
	}

	// Compile-time admission priors: the pipeline's decision ledger
	// carries, per segment, the static reuse estimate R̂ and the static
	// C/O cost model (cycles, read as ns — the prior only needs the
	// sign of R̂·C − O, and live windows correct the magnitudes).
	var admitPrior func(string) (reused.AdmitPrior, bool)
	if *priorsPath != "" {
		data, err := os.ReadFile(*priorsPath)
		if err != nil {
			return fmt.Errorf("priors: %w", err)
		}
		recs, err := parsePriorRecords(data)
		if err != nil {
			return fmt.Errorf("priors %s: %w", *priorsPath, err)
		}
		priors := map[string]reused.AdmitPrior{}
		for _, rec := range recs {
			if !rec.Eligible {
				continue
			}
			priors[rec.Segment] = reused.AdmitPrior{
				R:   rec.StaticReuseRate,
				CNS: rec.StaticC,
				ONS: rec.StaticO,
			}
		}
		admitPrior = func(name string) (reused.AdmitPrior, bool) {
			p, ok := priors[name]
			return p, ok
		}
		fmt.Fprintf(logw, "crcserve: %d admission priors from %s\n", len(priors), *priorsPath)
	}

	srv := reused.New(reused.Config{
		MaxConns:      *maxConns,
		MaxInflight:   *maxInflight,
		MemBudget:     *memBudget,
		Shards:        *shards,
		DrainGrace:    *drain,
		SnapshotPath:  *snapshot,
		SnapshotEvery: *snapshotEvery,
		Governor: reused.GovernorConfig{
			Window:        *govWindow,
			Probation:     *govProbation,
			AdmitPrior:    admitPrior,
			ColdProbation: *coldProbation,
			OnDecision: func(d reused.Decision) {
				if !*quiet {
					fmt.Fprintf(logw, "governor: %s %s R=%.3f C=%v O=%v gain=%v\n",
						d.State, d.Segment, d.R,
						time.Duration(d.C), time.Duration(d.O),
						time.Duration(d.Gain))
				}
			},
		},
	})

	// Warm restore before the listener opens: the very first GET already
	// probes the tables and governor state the previous process learned.
	if *snapshot != "" {
		segs, entries, err := srv.RestoreFile(*snapshot)
		if err != nil {
			return fmt.Errorf("restore %s: %w", *snapshot, err)
		}
		if segs > 0 {
			fmt.Fprintf(logw, "crcserve: warm start, %d segments / %d entries from %s\n",
				segs, entries, *snapshot)
		}
	}

	// A unix:// address serves co-located clients over a unix-domain
	// socket — same wire protocol, no loopback TCP stack in the
	// round-trip half of overhead O. A stale socket file from an
	// unclean previous exit is removed before listening.
	network, address := compreuse.ParseAddr(*addr)
	if network == "unix" {
		if err := removeStaleSocket(address); err != nil {
			return err
		}
	}
	ln, err := net.Listen(network, address)
	if err != nil {
		return err
	}
	if network == "unix" {
		defer os.Remove(address)
	}

	ctx, stop := sigctx.Notify(context.Background())
	defer stop()

	// Observability sidecar: the standard obs surface plus the
	// governor's decision ledger, drained on the same signal context.
	httpDone := make(chan error, 1)
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			ln.Close()
			return err
		}
		mux := obs.Handler()
		mux.HandleFunc("/decisions", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(srv.Decisions())
		})
		// /fleet.json scrapes the peers' /metrics.json on every request
		// and serves the merged fleet view; with no peers it is this
		// node's own snapshot in fleet shape.
		var peerAddrs []string
		if *peers != "" {
			for _, a := range strings.Split(*peers, ",") {
				if a = strings.TrimSpace(a); a != "" {
					peerAddrs = append(peerAddrs, a)
				}
			}
		}
		mux.Handle("/fleet.json",
			obs.FleetHandler(hln.Addr().String(), obs.Default(), peerAddrs, 2*time.Second))
		fmt.Fprintf(logw, "metrics on http://%s/metrics and /decisions\n", hln.Addr())
		go func() {
			httpDone <- sigctx.ServeHTTP(ctx, &http.Server{Handler: mux}, hln, *drain)
		}()
	} else {
		httpDone <- nil
	}

	fmt.Fprintf(logw, "crcserve listening on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(logw, "crcserve: signal received, draining (up to %v)\n", *drain)

	shCtx, cancel := context.WithTimeout(context.Background(), *drain+time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, reused.ErrServerClosed) {
		return err
	}
	if err := <-httpDone; err != nil {
		return fmt.Errorf("metrics server: %w", err)
	}
	fmt.Fprintln(logw, "crcserve: clean drain")
	return nil
}
