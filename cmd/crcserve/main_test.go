package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"compreuse"
	"compreuse/internal/core"
	"compreuse/internal/obs"
)

// syncBuf collects the server's log lines from concurrent writers.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestCrcserve boots the real binary's run function once and drives the
// ISSUE's three acceptance properties against it in order, ending with
// the SIGTERM drain (which stops the server).
func TestCrcserve(t *testing.T) {
	logs := &syncBuf{}
	addrCh := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-http", "127.0.0.1:0",
			"-gov-window", "64",
			"-gov-probation", "1000000", // keep BYPASS sticky for the test
			"-drain", "2s",
		}, logs, func(a net.Addr) { addrCh <- a })
	}()
	var addr string
	select {
	case a := <-addrCh:
		addr = a.String()
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	// Acceptance 1: overlapping key streams from >= 4 independent
	// clients (4 fleet members × 2 conns each) produce shared reuse —
	// aggregate server-side hit rate above zero.
	t.Run("SharedReuse", func(t *testing.T) {
		rep, err := loadgenRun([]string{
			"-addr", addr,
			"-fleet", "4", "-workers", "2", "-conns", "2",
			"-dur", "500ms", "-keys", "64",
			// Expensive enough that formula 3 keeps the segment admitted
			// on a loopback RTT.
			"-cost", "500us",
			"-seg", "shared",
		}, io.Discard)
		if err != nil {
			t.Fatalf("loadgen: %v", err)
		}
		if rep.Errors != 0 {
			t.Fatalf("loadgen saw %d errors (ops %d)", rep.Errors, rep.Ops)
		}
		if rep.Ops == 0 || rep.Server.Probes == 0 {
			t.Fatalf("no traffic reached the server: %+v", rep)
		}
		if rep.Server.Hits == 0 {
			t.Fatalf("no shared reuse: %d probes, 0 hits (distinct %d)",
				rep.Server.Probes, rep.Server.Distinct)
		}
		t.Logf("shared segment: %d/%d hits across 4 clients, RTT p50 %v p99 %v",
			rep.Server.Hits, rep.Server.Probes, rep.P50, rep.P99)
	})

	// Acceptance 2: a segment whose client-reported C is far below the
	// measured overhead O is driven to BYPASS by the governor.
	t.Run("GovernorBypassesCheapSegment", func(t *testing.T) {
		c, err := compreuse.DialCache(compreuse.ClientConfig{Addr: addr})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		seg, err := c.Segment("cheap", compreuse.SegmentConfig{})
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		bypassed := false
		for i := 0; !bypassed && time.Now().Before(deadline); i++ {
			key := []byte(fmt.Sprintf("cheap-%03d", i%8))
			_, status, err := seg.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			switch status {
			case compreuse.Bypass:
				bypassed = true
			case compreuse.Miss:
				// C = 1ns: never worth a network round trip.
				if err := seg.Put(key, []uint64{uint64(i)}, time.Nanosecond); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !bypassed {
			st, _ := seg.Stats()
			t.Fatalf("governor never bypassed the cheap segment: %+v", st)
		}
		st, err := seg.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if !st.BypassedNow {
			t.Fatalf("Get said bypass but stats disagree: %+v", st)
		}
		if !strings.Contains(logs.String(), "BYPASS cheap") {
			t.Errorf("decision was not logged; logs:\n%s", logs.String())
		}
	})

	// The metrics sidecar serves the decision ledger.
	t.Run("DecisionsEndpoint", func(t *testing.T) {
		m := regexp.MustCompile(`metrics on http://([^/\s]+)`).FindStringSubmatch(logs.String())
		if m == nil {
			t.Fatalf("no metrics address in logs:\n%s", logs.String())
		}
		resp, err := http.Get("http://" + m[1] + "/decisions")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /decisions: %s", resp.Status)
		}
		if !strings.Contains(string(body), `"BYPASS"`) {
			t.Errorf("decision ledger missing BYPASS entry: %s", body)
		}
	})

	// Acceptance 3: SIGTERM during a burst of in-flight requests drains
	// cleanly — every request already issued gets its response, and run
	// itself returns nil.
	t.Run("SigtermDrain", func(t *testing.T) {
		c, err := compreuse.DialCache(compreuse.ClientConfig{Addr: addr, Conns: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		seg, err := c.Segment("drain", compreuse.SegmentConfig{})
		if err != nil {
			t.Fatal(err)
		}

		const inflight = 64
		var failed atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < inflight; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				key := []byte(fmt.Sprintf("drain-%04d", i))
				if _, _, err := seg.Get(key); err != nil {
					failed.Add(1)
					t.Logf("get %d: %v", i, err)
				}
			}(i)
		}
		close(start)
		// Let the burst reach the wire, then deliver the signal.
		time.Sleep(2 * time.Millisecond)
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if n := failed.Load(); n != 0 {
			t.Fatalf("%d of %d in-flight requests dropped during drain", n, inflight)
		}

		select {
		case err := <-runErr:
			if err != nil {
				t.Fatalf("run returned %v after SIGTERM", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not exit after SIGTERM")
		}
		if !strings.Contains(logs.String(), "clean drain") {
			t.Errorf("drain not logged; logs:\n%s", logs.String())
		}
	})
}

// TestCrcservePriors boots the server with a decision-ledger priors
// file and cold probation: the segment whose static estimate predicts
// R̂·C − O > 0 serves a remote hit on its first repeat, while a segment
// the ledger never saw sits in probationary bypass.
func TestCrcservePriors(t *testing.T) {
	ledger := []core.DecisionRecord{
		{
			Segment: "hotseg", Eligible: true,
			StaticReuseRate: 0.9, StaticClass: "scalar-int",
			StaticC: 100_000, StaticO: 50,
		},
		{
			Segment: "lossseg", Eligible: true,
			StaticReuseRate: 0.0, StaticClass: "streaming",
			StaticC: 100, StaticO: 50,
		},
	}
	data, err := json.Marshal(ledger)
	if err != nil {
		t.Fatal(err)
	}
	priorsPath := t.TempDir() + "/priors.json"
	if err := os.WriteFile(priorsPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	logs := &syncBuf{}
	addrCh := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-http", "127.0.0.1:0",
			"-priors", priorsPath,
			"-cold-probation",
			"-gov-probation", "1000000", // probation must not expire mid-test
			"-q",
		}, logs, func(a net.Addr) { addrCh <- a })
	}()
	var addr string
	select {
	case a := <-addrCh:
		addr = a.String()
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	if !strings.Contains(logs.String(), "admission priors") {
		t.Errorf("priors load not logged; logs:\n%s", logs.String())
	}

	c, err := compreuse.DialCache(compreuse.ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Prior-admitted segment: PUT then immediate remote hit, long
	// before any probation window could have readmitted it.
	hot, err := c.Segment("hotseg", compreuse.SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	k := []byte("priors-key-1")
	if err := hot.Put(k, []uint64{7}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, status, err := hot.Get(k); err != nil || status != compreuse.Hit {
		t.Fatalf("prior-admitted segment: status %v err %v, want hit", status, err)
	}

	// Unknown and predicted-lossy segments both start bypassed.
	for _, name := range []string{"unknownseg", "lossseg"} {
		seg, err := c.Segment(name, compreuse.SegmentConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, status, err := seg.Get(k); err != nil || status != compreuse.Bypass {
			t.Fatalf("%s: status %v err %v, want probationary bypass", name, status, err)
		}
	}

	// The /decisions ledger surfaces the prior admission and the
	// cold-probation bypasses.
	m := regexp.MustCompile(`metrics on http://([^/\s]+)`).FindStringSubmatch(logs.String())
	if m == nil {
		t.Fatalf("no metrics address in logs:\n%s", logs.String())
	}
	resp, err := http.Get("http://" + m[1] + "/decisions")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"PRIOR"`) || !strings.Contains(string(body), "hotseg") {
		t.Errorf("/decisions missing PRIOR admission: %s", body)
	}
	if !strings.Contains(string(body), `"BYPASS"`) {
		t.Errorf("/decisions missing cold-probation BYPASS: %s", body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// TestLoadgenSmoke is the CI smoke test: a short real-traffic run
// against a fresh server must produce nonzero shared hits and a clean
// drain, all under the race detector.
func TestLoadgenSmoke(t *testing.T) {
	logs := &syncBuf{}
	addrCh := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-addr", "127.0.0.1:0", "-http", "", "-q"},
			logs, func(a net.Addr) { addrCh <- a })
	}()
	var addr string
	select {
	case a := <-addrCh:
		addr = a.String()
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	dur := "2s"
	if testing.Short() {
		dur = "300ms"
	}
	rep, err := loadgenRun([]string{
		"-addr", addr, "-dur", dur, "-keys", "256", "-cost", "200us",
	}, io.Discard)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	rep.print(&testWriter{t})
	if rep.Server.Hits == 0 {
		t.Fatalf("smoke traffic produced no hits: %+v", rep.Server)
	}
	if rep.Errors != 0 {
		t.Fatalf("smoke traffic saw %d errors", rep.Errors)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// TestTraceSmoke is the CI tracing smoke test: loadgen with -trace 1
// against an in-process server must produce at least one stitched
// multi-hop trace — a client root span plus a server span sharing the
// trace id — both in the report and at the /traces endpoint, and the
// node's /fleet.json must serve a merged snapshot.
func TestTraceSmoke(t *testing.T) {
	defer obs.DisableTrace()
	logs := &syncBuf{}
	addrCh := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-addr", "127.0.0.1:0", "-http", "127.0.0.1:0", "-q"},
			logs, func(a net.Addr) { addrCh <- a })
	}()
	var addr string
	select {
	case a := <-addrCh:
		addr = a.String()
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	dur := "500ms"
	if testing.Short() {
		dur = "200ms"
	}
	rep, err := loadgenRun([]string{
		"-addr", addr, "-dur", dur, "-keys", "128", "-cost", "50us",
		"-fleet", "2", "-workers", "2", "-trace", "1",
	}, io.Discard)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	rep.print(&testWriter{t})
	if rep.Errors != 0 {
		t.Fatalf("traced traffic saw %d errors", rep.Errors)
	}
	// The server runs in this process, so its srv.* spans share the ring
	// with the client roots: the traces must stitch.
	if rep.Stitched == 0 {
		t.Fatalf("no stitched traces: report %+v", rep)
	}

	m := regexp.MustCompile(`metrics on http://([^/\s]+)`).FindStringSubmatch(logs.String())
	if m == nil {
		t.Fatalf("no metrics address in logs:\n%s", logs.String())
	}

	// /traces serves the span ring as JSON; re-check stitching from the
	// scraped payload, exactly as an operator would.
	resp, err := http.Get("http://" + m[1] + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Enabled bool `json:"enabled"`
		Spans   []struct {
			Trace string `json:"trace"`
			Kind  string `json:"kind"`
			Name  string `json:"name"`
			DurNS int64  `json:"dur_ns"`
		} `json:"spans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode /traces: %v", err)
	}
	if !page.Enabled || len(page.Spans) == 0 {
		t.Fatalf("/traces: enabled=%v spans=%d, want enabled with spans",
			page.Enabled, len(page.Spans))
	}
	kinds := map[string]map[string]bool{} // trace id -> kinds present
	for _, s := range page.Spans {
		if s.DurNS < 0 {
			t.Errorf("span %s %s has negative duration %d", s.Trace, s.Name, s.DurNS)
		}
		if kinds[s.Trace] == nil {
			kinds[s.Trace] = map[string]bool{}
		}
		kinds[s.Trace][s.Kind] = true
	}
	stitched := 0
	for _, k := range kinds {
		if k["root"] && k["server"] {
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatalf("/traces has %d spans but no trace with both root and server kinds", len(page.Spans))
	}
	t.Logf("/traces: %d spans, %d stitched traces", len(page.Spans), stitched)

	// /fleet.json with no -peers is this node's own merged snapshot.
	resp, err = http.Get("http://" + m[1] + "/fleet.json")
	if err != nil {
		t.Fatal(err)
	}
	var fleet struct {
		Self   string `json:"self"`
		Merged struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"merged"`
	}
	err = json.NewDecoder(resp.Body).Decode(&fleet)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode /fleet.json: %v", err)
	}
	if fleet.Self == "" {
		t.Error("/fleet.json missing self address")
	}
	if len(fleet.Merged.Counters) == 0 {
		t.Error("/fleet.json merged snapshot has no counters")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

type testWriter struct{ t *testing.T }

func (w *testWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// TestParsePriorRecords accepts all three JSON shapes a deployment has
// at hand: the bare ledger array, the /decisions document, and the full
// `crcbench -json` export.
func TestParsePriorRecords(t *testing.T) {
	rec := core.DecisionRecord{Segment: "s@func", Eligible: true, StaticReuseRate: 0.8}
	bare, err := json.Marshal([]core.DecisionRecord{rec})
	if err != nil {
		t.Fatal(err)
	}
	decisions, err := json.Marshal(map[string][]core.DecisionRecord{"P/O0": {rec}})
	if err != nil {
		t.Fatal(err)
	}
	export, err := json.Marshal(map[string]any{
		"schema": "crcbench/2",
		"runs":   map[string]any{"P/O0": map[string]any{"ledger": []core.DecisionRecord{rec}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// crcbench/3 adds the dep-key ledger fields; priors from a PR-9-era
	// crcbench/2 file and from a current export must both keep loading.
	rec3 := rec
	rec3.DepKeyWidth = 8
	rec3.FullKeyWidth = 1448
	rec3.DepHitRate = 0.5
	export3, err := json.Marshal(map[string]any{
		"schema": "crcbench/3",
		"runs":   map[string]any{"P/O0": map[string]any{"ledger": []core.DecisionRecord{rec3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"bare-array": bare, "decisions-doc": decisions, "crcbench-export": export,
		"crcbench3-export": export3,
	} {
		recs, err := parsePriorRecords(data)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(recs) != 1 || recs[0].Segment != "s@func" || recs[0].StaticReuseRate != 0.8 {
			t.Errorf("%s: parsed %+v", name, recs)
		}
	}
	if _, err := parsePriorRecords([]byte(`"nope"`)); err == nil {
		t.Error("non-ledger JSON did not error")
	}
}
