package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"compreuse"
	"compreuse/internal/obs"
)

// loadgenReport is what a loadgen run measured; the CI smoke test
// asserts on it directly instead of scraping stdout.
type loadgenReport struct {
	Fleet, WorkersPer, ConnsPer int
	Elapsed                     time.Duration
	Ops                         int64
	Errors                      int64
	P50, P99, SmoothedRTT       time.Duration
	Server                      compreuse.RemoteStats
	Decisions                   []string
	// Stitched counts traces whose spans cross the wire (a client root
	// plus at least one server span). Zero unless -trace is set.
	Stitched int
	// breakdown is the per-span-name latency table behind Stitched,
	// printed after the standard report when tracing was on.
	breakdown *obs.Breakdown
}

func (r loadgenReport) print(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d clients × %d workers × %d conns, %d ops in %v = %.0f ops/s\n",
		r.Fleet, r.WorkersPer, r.ConnsPer, r.Ops, r.Elapsed.Round(time.Millisecond),
		float64(r.Ops)/r.Elapsed.Seconds())
	fmt.Fprintf(w, "GET RTT p50 %v  p99 %v  (client-smoothed %v)\n",
		r.P50, r.P99, r.SmoothedRTT)
	s := r.Server
	hitPct := 0.0
	if s.Probes > 0 {
		hitPct = 100 * float64(s.Hits) / float64(s.Probes)
	}
	fmt.Fprintf(w, "server: probes %d  hits %d (%.1f%%)  distinct %d  resident %d  bypassed %d\n",
		s.Probes, s.Hits, hitPct, s.Distinct, s.Resident, s.Bypassed)
	state := "ADMITTED"
	if s.BypassedNow {
		state = "BYPASS"
	}
	fmt.Fprintf(w, "governor: state %s  R=%.3f  C=%v  O=%v\n", state, s.R, s.C, s.O)
	for _, d := range r.Decisions {
		fmt.Fprintf(w, "governor: %s\n", d)
	}
	if r.Errors > 0 {
		fmt.Fprintf(w, "errors: %d\n", r.Errors)
	}
	if r.breakdown != nil {
		total := len(r.breakdown.Traces)
		// A short run can sample traces without stitching any (the
		// server halves live in another process, or sampling missed the
		// cross-wire requests); dividing by zero here would print NaN.
		if r.Stitched > 0 {
			fmt.Fprintf(w, "traces: %d total, %d stitched across the wire (%.1f%%)\n",
				total, r.Stitched, 100*float64(r.Stitched)/float64(total))
		} else {
			fmt.Fprintf(w, "traces: %d total, no stitched traces\n", total)
		}
		r.breakdown.Format(w, 1)
	}
}

// loadgenRun models a fleet: `-fleet` independent processes (each its
// own Client and connection pool) hammering one shared segment with an
// overlapping key stream, so cross-client reuse is real, not an
// artifact of a shared in-process cache. Each worker probes, computes
// on a miss (busy-spinning `-cost`), and reports the measured cost with
// its PUT — exactly the protocol TieredMemo speaks — while a monitor
// goroutine polls server stats to surface governor decisions live.
func loadgenRun(args []string, logw io.Writer) (loadgenReport, error) {
	fs := flag.NewFlagSet("crcserve loadgen", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", "localhost:8345",
		"crcserve address (host:port or unix:///path/to.sock)")
	fleet := fs.Int("fleet", 4, "independent clients (modeled fleet processes)")
	workers := fs.Int("workers", 0, "workers per client; 0 = GOMAXPROCS")
	conns := fs.Int("conns", 2, "pooled connections per client")
	dur := fs.Duration("dur", 2*time.Second, "traffic duration")
	keys := fs.Int("keys", 1024, "distinct keys in the shared stream")
	cost := fs.Duration("cost", 20*time.Microsecond,
		"modeled computation cost per miss (busy spin, reported as C)")
	segName := fs.String("seg", "loadgen", "segment name")
	entries := fs.Int("entries", 0, "server-side table bound (0 = unbounded)")
	seed := fs.Int64("seed", 1, "key-stream seed")
	trace := fs.Int("trace", 0,
		"trace every Nth request end to end (1 = all, 0 disables); prints the latency breakdown")
	if err := fs.Parse(args); err != nil {
		return loadgenReport{}, err
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *trace > 0 {
		obs.ResetTraces()
		obs.EnableTrace(*trace, 0)
	}

	type member struct {
		c   *compreuse.Client
		seg *compreuse.RemoteSegment
	}
	members := make([]member, *fleet)
	for i := range members {
		c, err := compreuse.DialCache(compreuse.ClientConfig{Addr: *addr, Conns: *conns})
		if err != nil {
			return loadgenReport{}, fmt.Errorf("dial %s: %w", *addr, err)
		}
		defer c.Close()
		seg, err := c.Segment(*segName, compreuse.SegmentConfig{Entries: *entries, LRU: *entries > 0})
		if err != nil {
			return loadgenReport{}, err
		}
		members[i] = member{c: c, seg: seg}
	}

	keyBuf := make([][]byte, *keys)
	for i := range keyBuf {
		keyBuf[i] = []byte(fmt.Sprintf("loadgen-key-%08d", i))
	}

	var (
		ops, errs atomic.Int64
		sampleMu  sync.Mutex
		samples   []int64
	)
	deadline := time.Now().Add(*dur)
	var wg sync.WaitGroup
	for mi, m := range members {
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(m member, id int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(*seed + int64(id)))
				local := make([]int64, 0, 4096)
				for time.Now().Before(deadline) {
					k := keyBuf[rng.Intn(len(keyBuf))]
					// Each iteration is one traced unit of work: the root
					// span covers probe + compute + record, mirroring what
					// TieredMemo.Do would stitch together.
					root := obs.StartRoot("loadgen.do")
					start := time.Now()
					_, status, err := m.seg.GetTraced(k, root.Context())
					rtt := time.Since(start)
					ops.Add(1)
					if err != nil {
						errs.Add(1)
						root.Outcome("err")
						root.End()
						continue
					}
					if status != compreuse.Bypass {
						local = append(local, rtt.Nanoseconds())
					}
					switch status {
					case compreuse.Hit:
						root.Outcome("hit")
					case compreuse.Bypass:
						root.Outcome("bypass")
					default:
						root.Outcome("miss")
					}
					if status != compreuse.Hit {
						// Miss or bypass: pay the modeled computation.
						csp := obs.StartSpan(root.Context(), "compute")
						cstart := time.Now()
						v := spin(*cost)
						csp.End()
						if status == compreuse.Miss {
							if perr := m.seg.PutTraced(k, []uint64{v}, time.Since(cstart), root.Context()); perr != nil {
								errs.Add(1)
							}
						}
					}
					root.End()
				}
				sampleMu.Lock()
				samples = append(samples, local...)
				sampleMu.Unlock()
			}(m, mi*(*workers)+w)
		}
	}

	// Surface governor flips while traffic runs.
	var decisions []string
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		last := false
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for time.Now().Before(deadline) {
			<-tick.C
			st, err := members[0].seg.Stats()
			if err != nil {
				return
			}
			if st.BypassedNow != last {
				last = st.BypassedNow
				verdict := "READMIT"
				if st.BypassedNow {
					verdict = "BYPASS"
				}
				decisions = append(decisions,
					fmt.Sprintf("%s %s (R=%.3f C=%v O=%v)", verdict, *segName, st.R, st.C, st.O))
			}
		}
	}()
	wg.Wait()
	<-monitorDone
	elapsed := *dur

	rep := loadgenReport{
		Fleet: *fleet, WorkersPer: *workers, ConnsPer: *conns,
		Elapsed:     elapsed,
		Ops:         ops.Load(),
		Errors:      errs.Load(),
		SmoothedRTT: members[0].c.RTT(),
		Decisions:   decisions,
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if n := len(samples); n > 0 {
		rep.P50 = time.Duration(samples[n/2])
		rep.P99 = time.Duration(samples[n*99/100])
	}
	st, err := members[0].seg.Stats()
	if err != nil {
		return rep, err
	}
	rep.Server = st
	if *trace > 0 {
		// Summarize the local span ring. When the server runs in this
		// process (the smoke test, crcbench fleet) its srv.* spans share
		// the ring and traces stitch; against a remote server the server
		// halves live in its own /traces endpoint instead.
		bd := obs.Summarize(obs.TraceSpans())
		rep.breakdown = &bd
		rep.Stitched = bd.Stitched
	}
	return rep, nil
}

// spin busy-loops for d, modeling a computation whose cost C the
// governor weighs; returns a value derived from the loop so it cannot
// be optimized away.
func spin(d time.Duration) uint64 {
	end := time.Now().Add(d)
	var acc uint64
	for time.Now().Before(end) {
		acc++
	}
	return acc | 1
}
