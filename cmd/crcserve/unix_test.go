package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"compreuse"
)

// TestUnixSocket boots the server on a unix-domain socket and drives a
// full client round trip through the unix:// scheme — the co-located
// transport whose smaller per-probe overhead O is the point of the
// feature — then checks the clean drain removes the socket file.
func TestUnixSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "crc.sock")
	addr := "unix://" + sock

	logs := &syncBuf{}
	addrCh := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-addr", addr, "-http", "", "-q"},
			logs, func(a net.Addr) { addrCh <- a })
	}()
	select {
	case a := <-addrCh:
		if a.Network() != "unix" || a.String() != sock {
			t.Fatalf("listening on %s %q, want unix %q", a.Network(), a, sock)
		}
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	c, err := compreuse.DialCache(compreuse.ClientConfig{Addr: addr, Conns: 2})
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer c.Close()
	seg, err := c.Segment("unix", compreuse.SegmentConfig{OutWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("unix-key")
	if _, status, err := seg.Get(key); err != nil || status != compreuse.Miss {
		t.Fatalf("cold get: status %v err %v, want miss", status, err)
	}
	if err := seg.Put(key, []uint64{7, 11}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	vals, status, err := seg.Get(key)
	if err != nil || status != compreuse.Hit {
		t.Fatalf("warm get: status %v err %v, want hit", status, err)
	}
	if len(vals) != 2 || vals[0] != 7 || vals[1] != 11 {
		t.Fatalf("warm get vals %v, want [7 11]", vals)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
	if _, err := os.Lstat(sock); !os.IsNotExist(err) {
		t.Errorf("socket file %s still present after clean drain (err=%v)", sock, err)
	}
}

// TestStaleSocketRemoval covers the restart-after-crash path: a
// leftover socket file is unlinked and rebound, but a regular file at
// the address refuses to be deleted.
func TestStaleSocketRemoval(t *testing.T) {
	dir := t.TempDir()

	t.Run("Missing", func(t *testing.T) {
		if err := removeStaleSocket(filepath.Join(dir, "never-existed.sock")); err != nil {
			t.Fatalf("missing path: %v, want nil", err)
		}
	})

	t.Run("Stale", func(t *testing.T) {
		sock := filepath.Join(dir, "stale.sock")
		ln, err := net.ListenUnix("unix", &net.UnixAddr{Name: sock, Net: "unix"})
		if err != nil {
			t.Fatal(err)
		}
		// Leave the socket file behind, as an unclean exit would.
		ln.SetUnlinkOnClose(false)
		ln.Close()
		if _, err := os.Lstat(sock); err != nil {
			t.Fatalf("setup left no socket file: %v", err)
		}
		if err := removeStaleSocket(sock); err != nil {
			t.Fatalf("stale socket: %v, want removal", err)
		}
		if _, err := os.Lstat(sock); !os.IsNotExist(err) {
			t.Fatal("stale socket file survived removeStaleSocket")
		}
	})

	t.Run("RegularFile", func(t *testing.T) {
		path := filepath.Join(dir, "precious.txt")
		if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
			t.Fatal(err)
		}
		err := removeStaleSocket(path)
		if err == nil || !strings.Contains(err.Error(), "not a socket") {
			t.Fatalf("regular file: err %v, want refusal", err)
		}
		if _, statErr := os.Lstat(path); statErr != nil {
			t.Fatal("removeStaleSocket deleted a regular file")
		}
	})

	// run() itself must surface the refusal rather than listen.
	t.Run("RunRefuses", func(t *testing.T) {
		path := filepath.Join(dir, "config.txt")
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		err := run([]string{"-addr", "unix://" + path, "-http", ""}, &syncBuf{}, nil)
		if err == nil || !strings.Contains(err.Error(), "not a socket") {
			t.Fatalf("run on a regular file: err %v, want refusal", err)
		}
	})
}

// TestParseAddr pins the address-scheme split the server and client
// share.
func TestParseAddr(t *testing.T) {
	cases := []struct {
		in, network, address string
	}{
		{"localhost:8345", "tcp", "localhost:8345"},
		{"127.0.0.1:0", "tcp", "127.0.0.1:0"},
		{"unix:///run/crc.sock", "unix", "/run/crc.sock"},
		{"unix://rel.sock", "unix", "rel.sock"},
	}
	for _, c := range cases {
		network, address := compreuse.ParseAddr(c.in)
		if network != c.network || address != c.address {
			t.Errorf("ParseAddr(%q) = %q, %q; want %q, %q",
				c.in, network, address, c.network, c.address)
		}
	}
}
