package main

import (
	"strings"
	"testing"

	"compreuse/internal/obs"
)

// zeroStitchedBreakdown builds a breakdown with recorded client-only
// traces and nothing stitched across the wire — what a short -trace
// run against a remote server produces.
func zeroStitchedBreakdown() *obs.Breakdown {
	return &obs.Breakdown{
		Stats: []obs.SpanStat{{Name: "do", Count: 2, TotalNS: 2000, MaxNS: 1500, MaxTrace: 0xA}},
		Traces: []obs.TraceSummary{
			{Trace: 0xA, Spans: []obs.SpanRecord{{Trace: 0xA, Span: 1, Kind: obs.KindRoot, Name: "do", Dur: 1500}}},
			{Trace: 0xB, Spans: []obs.SpanRecord{{Trace: 0xB, Span: 2, Kind: obs.KindRoot, Name: "do", Dur: 500}}},
		},
		Stitched: 0,
	}
}

// TestLoadgenReportNoStitchedTraces pins the zero-stitched print path:
// a traced run that recorded spans but never stitched a client root to
// a server span must say so, not divide by zero into NaN/Inf.
func TestLoadgenReportNoStitchedTraces(t *testing.T) {
	rep := loadgenReport{
		Fleet: 1, WorkersPer: 1, ConnsPer: 1,
		Elapsed:   1e9,
		Ops:       10,
		breakdown: zeroStitchedBreakdown(),
	}
	var sb strings.Builder
	rep.print(&sb)
	out := sb.String()
	if !strings.Contains(out, "traces: 2 total, no stitched traces") {
		t.Errorf("missing zero-stitched notice in:\n%s", out)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("report printed %s:\n%s", bad, out)
		}
	}
}

// TestLoadgenReportStitchedShare checks the happy path still reports
// the stitched share as a percentage.
func TestLoadgenReportStitchedShare(t *testing.T) {
	bd := zeroStitchedBreakdown()
	bd.Stitched = 1
	rep := loadgenReport{
		Fleet: 1, WorkersPer: 1, ConnsPer: 1,
		Elapsed:   1e9,
		Ops:       10,
		Stitched:  1,
		breakdown: bd,
	}
	var sb strings.Builder
	rep.print(&sb)
	if !strings.Contains(sb.String(), "1 stitched across the wire (50.0%)") {
		t.Errorf("missing stitched share in:\n%s", sb.String())
	}
}
