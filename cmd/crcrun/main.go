// Command crcrun executes a MiniC program on the cycle-accounting VM (the
// simulated 206 MHz StrongARM SA-1110) without any reuse transformation —
// useful for testing programs and measuring baselines.
//
// Usage:
//
//	crcrun [flags] file.c [arg1 arg2 ...]
//
//	-O3        use the optimized cost model and optimizer
//	-stats     print cycle/energy statistics after the program output
//	-freq      print the hottest functions (execution-frequency profile)
//	-cfg F     print function F's control-flow graph in Graphviz format
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"compreuse/internal/cfg"
	"compreuse/internal/cost"
	"compreuse/internal/energy"
	"compreuse/internal/interp"
	"compreuse/internal/minic"
	"compreuse/internal/opt"
)

func main() {
	o3 := flag.Bool("O3", false, "optimize aggressively")
	stats := flag.Bool("stats", false, "print execution statistics")
	freq := flag.Bool("freq", false, "print per-function execution counts")
	cfgOf := flag.String("cfg", "", "print the control-flow graph of the named function (Graphviz) and exit")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: crcrun [flags] file.c [main args...]")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("main argument %q is not an integer", a))
		}
		args = append(args, v)
	}

	prog, err := minic.Parse(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	if err := minic.Check(prog); err != nil {
		fatal(err)
	}
	if *cfgOf != "" {
		fn := prog.Func(*cfgOf)
		if fn == nil {
			fatal(fmt.Errorf("no function %q", *cfgOf))
		}
		fmt.Print(cfg.Build(fn).Dot())
		return
	}
	model := cost.O0()
	if *o3 {
		opt.Run(prog)
		model = cost.O3()
	}
	res, err := interp.Run(prog, interp.Options{
		Model:       model,
		Args:        args,
		CollectFreq: *freq,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Output)
	if *stats {
		m := energy.Measure(res, energy.Default())
		fmt.Fprintf(os.Stderr, "exit: %d\n", res.Ret)
		fmt.Fprintf(os.Stderr, "cycles: %d (%.4fs at 206MHz, %s)\n", res.Cycles, res.Seconds(), model.Name)
		fmt.Fprintf(os.Stderr, "energy: %.3fJ (avg %.2fW, %.3fA at 5V)\n", m.Joules, m.AvgWatts, m.AvgCurrentA)
		fmt.Fprintf(os.Stderr, "ops: int=%d mul=%d div=%d float=%d mem=%d branch=%d call=%d\n",
			res.Ops.IntOps, res.Ops.MulOps, res.Ops.DivOps, res.Ops.FloatOps,
			res.Ops.MemOps, res.Ops.Branches, res.Ops.Calls)
	}
	if *freq {
		type fc struct {
			name  string
			count int64
		}
		var fns []fc
		for _, fn := range prog.Funcs {
			if fn.ID() < len(res.Freq) && res.Freq[fn.ID()] > 0 {
				fns = append(fns, fc{fn.Name, res.Freq[fn.ID()]})
			}
		}
		sort.Slice(fns, func(i, j int) bool { return fns[i].count > fns[j].count })
		fmt.Fprintln(os.Stderr, "function call counts:")
		for _, f := range fns {
			fmt.Fprintf(os.Stderr, "  %-30s %d\n", f.name, f.count)
		}
	}
	if res.Ret != 0 {
		os.Exit(int(res.Ret & 0x7f))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crcrun:", err)
	os.Exit(1)
}
