// Command crc is the computation-reuse compiler driver: it runs the full
// scheme of Ding & Li (CGO 2004) on a MiniC source file and reports what
// it decided, optionally emitting the transformed source (the scheme is a
// source-to-source transformation, §3.1).
//
// Usage:
//
//	crc [flags] file.c [arg1 arg2 ...]
//
//	-O0 | -O3        optimization level (default -O0)
//	-emit            print the transformed source to stdout (otherwise the
//	                 per-segment decision report is printed)
//	-run             also report baseline vs transformed execution
//	-min-freq N      execution-frequency filter threshold (default 8)
//	-no-merge        disable hash-table merging (§2.5)
//	-no-specialize   disable code specialization (§2.4)
//	-sub-blocks      enable sub-block segments (§5 future work)
//	-profile-out F   save the profiling snapshot to F (gmon.out analogue)
//	-profile-in F    reuse a saved snapshot instead of re-profiling
//	-hist            print input-value histograms of transformed segments
//
// The trailing integer arguments are passed to the program's main.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"compreuse/internal/core"
	"compreuse/internal/profile"
)

func main() {
	o3 := flag.Bool("O3", false, "optimize aggressively (GCC -O3 stand-in)")
	o0 := flag.Bool("O0", false, "no optimization (default)")
	emit := flag.Bool("emit", false, "print the transformed source")
	run := flag.Bool("run", false, "report baseline vs transformed execution")
	minFreq := flag.Int64("min-freq", 8, "frequency filter threshold")
	noMerge := flag.Bool("no-merge", false, "disable hash-table merging")
	noSpec := flag.Bool("no-specialize", false, "disable code specialization")
	subBlocks := flag.Bool("sub-blocks", false, "enable the sub-block segment extension (paper §5 future work)")
	profOut := flag.String("profile-out", "", "write the profiling snapshot (gmon.out analogue) to this file")
	profIn := flag.String("profile-in", "", "compile from a previously saved profiling snapshot")
	hist := flag.Bool("hist", false, "print input-value histograms of the transformed segments")
	flag.Parse()
	_ = o0

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: crc [flags] file.c [main args...]")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var args []int64
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("main argument %q is not an integer", a))
		}
		args = append(args, v)
	}

	level := "O0"
	if *o3 {
		level = "O3"
	}
	opts := core.Options{
		Name:         path,
		Source:       string(src),
		OptLevel:     level,
		MainArgs:     args,
		MinFreq:      *minFreq,
		NoMerge:      *noMerge,
		NoSpecialize: *noSpec,
		SubBlocks:    *subBlocks,
	}
	if *profIn != "" {
		f, err := os.Open(*profIn)
		if err != nil {
			fatal(err)
		}
		snap, err := profile.LoadSnapshot(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		opts.Profile = snap
	}
	rep, err := core.Run(opts)
	if err != nil {
		fatal(err)
	}
	if *profOut != "" {
		f, err := os.Create(*profOut)
		if err != nil {
			fatal(err)
		}
		if err := rep.Snapshot.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *emit {
		fmt.Print(rep.TransformedSource)
		return
	}

	fmt.Printf("%s (%s): %d segments analyzed, %d profiled, %d transformed\n",
		path, level, rep.SegmentsAnalyzed, rep.SegmentsProfiled, rep.SegmentsTransformed)
	if len(rep.Specialized) > 0 {
		fmt.Printf("specialized: %v\n", rep.Specialized)
	}
	for _, d := range rep.Decisions {
		status := "rejected"
		why := d.Reason
		switch {
		case d.Selected:
			status = "TRANSFORMED"
			why = ""
		case !d.Eligible:
		case !d.PassedOC:
			why = "fails O/C < 1"
		case !d.PassedFreq:
			why = "executed too rarely"
		case d.Profiled && d.Gain <= 0:
			why = "R*C - O <= 0"
		case d.Profiled:
			why = "nested inside a better segment"
		default:
			why = "not profiled"
		}
		line := fmt.Sprintf("  %-30s %-12s", d.Name, status)
		if d.Profile != nil {
			line += fmt.Sprintf(" N=%-8d Nds=%-7d R=%5.1f%% C=%8.0f O=%6.0f gain=%8.0f",
				d.Profile.N, d.Profile.Nds, d.Profile.ReuseRate()*100,
				d.Profile.MeasuredC, d.Profile.Overhead, d.Gain)
		}
		if why != "" {
			line += " [" + why + "]"
		}
		fmt.Println(line)
	}
	for _, t := range rep.Tables {
		fmt.Printf("  table %-40s entries=%-7d entry=%dB total=%dB hits=%d misses=%d collisions=%d\n",
			t.Name, t.Entries, t.EntryBytes, t.SizeBytes,
			t.Stats.Hits, t.Stats.Misses, t.Stats.Collisions)
	}
	if *hist {
		for _, d := range rep.Decisions {
			if !d.Selected || d.Profile == nil {
				continue
			}
			fmt.Printf("input histogram of %s (%d executions, %d distinct):\n",
				d.Name, d.Profile.N, d.Profile.Nds)
			h := profile.ValueHistogram(d.Profile.Census, 16)
			if h == nil {
				fmt.Println("  (multi-variable key: no scalar histogram)")
				continue
			}
			var max int64 = 1
			for _, b := range h {
				if b.Count > max {
					max = b.Count
				}
			}
			for _, b := range h {
				n := int(b.Count * 40 / max)
				fmt.Printf("  [%7d,%7d) |%s %d\n", b.Lo, b.Hi, strings.Repeat("#", n), b.Count)
			}
		}
	}
	if *run {
		fmt.Printf("baseline: ret=%d cycles=%d (%.4fs at 206MHz) energy=%.3fJ\n",
			rep.Baseline.Ret, rep.Baseline.Cycles, rep.Baseline.Seconds, rep.Baseline.Energy.Joules)
		fmt.Printf("reuse:    ret=%d cycles=%d (%.4fs at 206MHz) energy=%.3fJ\n",
			rep.Reuse.Ret, rep.Reuse.Cycles, rep.Reuse.Seconds, rep.Reuse.Energy.Joules)
		fmt.Printf("speedup:  %.3f   energy saving: %.1f%%\n", rep.Speedup(), rep.EnergySaving()*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crc:", err)
	os.Exit(1)
}
