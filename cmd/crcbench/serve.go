package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"compreuse/internal/bench"
	"compreuse/internal/core"
	"compreuse/internal/obs"
	"compreuse/internal/sigctx"
)

// serveMain is the `crcbench serve` subcommand: it enables the telemetry
// layer, runs the selected experiments in the background, and serves the
// live metrics and the decision ledgers over HTTP:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the same registry as a JSON document
//	/decisions     decision ledgers of every completed pipeline run
//	/debug/vars    expvar
//	/debug/pprof   runtime profiles
func serveMain(args []string) error {
	fs := flag.NewFlagSet("crcbench serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8344", "listen address")
	exp := fs.String("exp", "all", "comma-separated experiment names, or 'all'")
	scale := fs.Int64("scale", 1, "divide workload sizes by this factor")
	quiet := fs.Bool("q", false, "suppress progress output")
	grace := fs.Duration("drain", 2*time.Second,
		"how long to let in-flight scrapes finish after SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}

	obs.Enable()
	runner := bench.NewRunner()
	runner.Scale = *scale
	if !*quiet {
		runner.Progress = os.Stderr
	}

	store := newDecisionStore()
	mux := newServeMux(store)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving http://%s/metrics and /decisions\n", ln.Addr())

	go func() {
		start := time.Now()
		results, err := runExperiments(os.Stdout, runner, *exp, false)
		store.update(runner.Reports())
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "%d experiments in %.1fs; still serving (Ctrl-C to stop)\n",
			len(results), time.Since(start).Seconds())
	}()

	// Drain on SIGINT/SIGTERM instead of dying mid-scrape: stop
	// accepting, let in-flight responses finish, then return cleanly.
	ctx, stop := sigctx.Notify(context.Background())
	defer stop()
	if err := sigctx.ServeHTTP(ctx, &http.Server{Handler: mux}, ln, *grace); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "crcbench serve: clean drain")
	return nil
}

// decisionStore holds the decision ledgers of completed pipeline runs,
// keyed "program/level", for the /decisions endpoint. Experiments update
// it; scrapes read it concurrently.
type decisionStore struct {
	mu      sync.Mutex
	ledgers map[string][]core.DecisionRecord
}

func newDecisionStore() *decisionStore {
	return &decisionStore{ledgers: map[string][]core.DecisionRecord{}}
}

// update replaces the store contents from a runner's memoized reports.
func (s *decisionStore) update(reports map[string]*core.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, rep := range reports {
		s.ledgers[key] = rep.Ledger
	}
}

// serveHTTP writes the ledgers as one JSON object keyed by run.
func (s *decisionStore) serveHTTP(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	cp := make(map[string][]core.DecisionRecord, len(s.ledgers))
	for k, v := range s.ledgers {
		cp[k] = v
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(cp)
}

// newServeMux mounts the observability handler plus the decision ledger
// and a plain-text index.
func newServeMux(store *decisionStore) *http.ServeMux {
	mux := obs.Handler()
	mux.HandleFunc("/decisions", store.serveHTTP)
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		endpoints := []string{
			"/metrics", "/metrics.json", "/decisions", "/debug/vars", "/debug/pprof/",
		}
		sort.Strings(endpoints)
		fmt.Fprintln(w, "crcbench serve — computation-reuse telemetry")
		for _, e := range endpoints {
			fmt.Fprintln(w, "  "+e)
		}
	})
	return mux
}
