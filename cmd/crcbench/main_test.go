package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compreuse/internal/bench"
	"compreuse/internal/core"
	"compreuse/internal/obs"
)

// fig5Runner executes the cheapest experiment (fig5: one G721_encode run
// at O0) at a reduced workload, returning the runner and captured results.
func fig5Runner(t *testing.T) (*bench.Runner, []expResult) {
	t.Helper()
	runner := bench.NewRunner()
	runner.Scale = 64
	results, err := runExperiments(io.Discard, runner, "fig5", true)
	if err != nil {
		t.Fatal(err)
	}
	return runner, results
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// TestServeEndpoints scrapes every endpoint of the serve mux after a real
// experiment run, as a monitoring system would.
func TestServeEndpoints(t *testing.T) {
	obs.Enable()
	defer obs.Disable()

	runner, _ := fig5Runner(t)
	store := newDecisionStore()
	store.update(runner.Reports())

	srv := httptest.NewServer(newServeMux(store))
	defer srv.Close()

	code, body, ctype := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content-type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE crc_probes_total counter",
		"crc_pipeline_runs_total",
		"crc_probe_latency_ns_bucket{le=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body, ctype = get(t, srv, "/metrics.json")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/metrics.json: status %d content-type %q", code, ctype)
	}
	var snap obs.RegistrySnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Counters["crc_probes_total"] == 0 {
		t.Error("/metrics.json: probe counter did not move during the run")
	}

	code, body, ctype = get(t, srv, "/decisions")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/decisions: status %d content-type %q", code, ctype)
	}
	var ledgers map[string][]core.DecisionRecord
	if err := json.Unmarshal([]byte(body), &ledgers); err != nil {
		t.Fatalf("/decisions: %v", err)
	}
	recs, ok := ledgers["G721_encode/O0"]
	if !ok || len(recs) == 0 {
		t.Fatalf("/decisions: no ledger for G721_encode/O0 (have %d runs)", len(ledgers))
	}
	sawAccepted := false
	for _, rec := range recs {
		if rec.Reason == "" {
			t.Errorf("/decisions: %s has no reason", rec.Segment)
		}
		if rec.Accepted && rec.N > 0 {
			sawAccepted = true
		}
	}
	if !sawAccepted {
		t.Error("/decisions: no accepted record with observed N")
	}

	if code, _, _ = get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", code)
	}
	if code, _, _ = get(t, srv, "/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars: status %d", code)
	}
	code, body, _ = get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/decisions") {
		t.Errorf("index: status %d body %q", code, body)
	}
}

// TestJSONExport writes the -json document for a real run and round-trips
// the decision ledger through it.
func TestJSONExport(t *testing.T) {
	runner, results := fig5Runner(t)

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeJSONDoc(path, runner, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var doc jsonDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "crcbench/3" {
		t.Errorf("schema %q", doc.Schema)
	}
	if doc.GoVersion == "" || doc.Date == "" || doc.Scale != 64 {
		t.Errorf("metadata incomplete: %+v", doc)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].Name != "fig5" {
		t.Fatalf("experiments: %+v", doc.Experiments)
	}
	if !strings.Contains(doc.Experiments[0].Output, "Figure 5") {
		t.Error("captured output lost the figure")
	}

	run, ok := doc.Runs["G721_encode/O0"]
	if !ok {
		t.Fatalf("runs missing G721_encode/O0: have %v", len(doc.Runs))
	}
	if run.Speedup <= 0 || run.BaselineCycles == 0 {
		t.Errorf("run measurements missing: %+v", run)
	}
	if len(run.Tables) == 0 {
		t.Error("run has no table info")
	}

	want := runner.Reports()["G721_encode/O0"].Ledger
	if len(run.Ledger) != len(want) {
		t.Fatalf("ledger round-trip lost records: %d -> %d", len(want), len(run.Ledger))
	}
	for i := range want {
		if run.Ledger[i] != want[i] {
			t.Errorf("ledger record %d changed in round-trip", i)
		}
	}
	// crcbench/2: every eligible record carries the static estimate.
	for _, rec := range run.Ledger {
		if rec.Eligible && rec.StaticClass == "" {
			t.Errorf("eligible record %s missing static estimate", rec.Segment)
		}
	}
}
