// Command crcbench regenerates the evaluation of Ding & Li (CGO 2004):
// every table (3-10) and figure (5-8, 11-15) of the paper, using the MiniC
// re-implementations of the Mediabench kernels and GNU Go in
// internal/bench. Beyond the paper it also runs the two ablation studies
// (-exp ablationA, -exp ablationB) and the concurrent-runtime sweep
// (-exp conc: single-mutex vs sharded reuse-table throughput at 1-8
// goroutines).
//
// Usage:
//
//	crcbench                 # everything, full workload sizes
//	crcbench -exp table6     # one table or figure
//	crcbench -exp table6,fig14
//	crcbench -exp conc       # the concurrent-runtime throughput sweep
//	crcbench -scale 4        # divide workload sizes by 4 (quick look)
//	crcbench -json out.json  # also write results + decision ledgers as JSON
//	crcbench -list           # list experiment names
//
//	crcbench serve -exp fig5 -scale 4   # run experiments, then serve
//	                                    # /metrics, /decisions, /debug/pprof
//
//	crcbench fleet -nodes 3 -dur 3s     # distributed-tier demo: boot an
//	                                    # in-process crcserve ring, kill a
//	                                    # node mid-load, restart it warm
//	                                    # from its snapshot
//
//	crcbench perfjson -o BENCH_6.json            # snapshot the perf trajectory
//	crcbench perfjson -compare BENCH_6.json      # diff a fresh run against it
//	                                             # (allocs/op regressions fail)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"compreuse/internal/bench"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := serveMain(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		if _, err := fleetMain(os.Args[2:], os.Stdout, os.Stderr); err != nil && err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "perfjson" {
		if err := perfJSONMain(os.Args[2:], os.Stderr); err != nil && err != flag.ErrHelp {
			fmt.Fprintf(os.Stderr, "perfjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	exp := flag.String("exp", "all", "comma-separated experiment names (see -list), or 'all'")
	scale := flag.Int64("scale", 1, "divide workload sizes by this factor")
	list := flag.Bool("list", false, "list experiment names and exit")
	quiet := flag.Bool("q", false, "suppress progress output")
	jsonOut := flag.String("json", "", "also write results, run metadata and decision ledgers to this JSON file")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	runner := bench.NewRunner()
	runner.Scale = *scale
	if !*quiet {
		runner.Progress = os.Stderr
	}

	start := time.Now()
	results, err := runExperiments(os.Stdout, runner, *exp, *jsonOut != "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "%d experiments in %.1fs\n", len(results), time.Since(start).Seconds())
	}

	if *jsonOut != "" {
		if err := writeJSONDoc(*jsonOut, runner, results); err != nil {
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
		}
	}
}

// expResult is one executed experiment; Output is captured only when the
// run needs it for JSON export (the terminal stream stays byte-identical
// either way).
type expResult struct {
	Name   string
	Desc   string
	Output string
}

// runExperiments executes the selected experiments against w, returning
// one result per experiment run. With capture set, each experiment's
// rendered tables/figures are also kept in the result.
func runExperiments(w io.Writer, runner *bench.Runner, sel string, capture bool) ([]expResult, error) {
	want := map[string]bool{}
	all := sel == "all" || sel == ""
	for _, name := range strings.Split(sel, ",") {
		want[strings.TrimSpace(name)] = true
	}

	var results []expResult
	for _, e := range bench.Experiments() {
		if !all && !want[e.Name] {
			continue
		}
		out := w
		var buf strings.Builder
		if capture {
			out = io.MultiWriter(w, &buf)
		}
		if err := e.Run(out, runner); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		fmt.Fprintln(w)
		results = append(results, expResult{Name: e.Name, Desc: e.Desc, Output: buf.String()})
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no experiment matched %q (try -list)", sel)
	}
	return results, nil
}
