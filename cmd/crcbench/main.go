// Command crcbench regenerates the evaluation of Ding & Li (CGO 2004):
// every table (3-10) and figure (5-8, 11-15) of the paper, using the MiniC
// re-implementations of the Mediabench kernels and GNU Go in
// internal/bench. Beyond the paper it also runs the two ablation studies
// (-exp ablationA, -exp ablationB) and the concurrent-runtime sweep
// (-exp conc: single-mutex vs sharded reuse-table throughput at 1-8
// goroutines).
//
// Usage:
//
//	crcbench                 # everything, full workload sizes
//	crcbench -exp table6     # one table or figure
//	crcbench -exp table6,fig14
//	crcbench -exp conc       # the concurrent-runtime throughput sweep
//	crcbench -scale 4        # divide workload sizes by 4 (quick look)
//	crcbench -list           # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"compreuse/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment names (see -list), or 'all'")
	scale := flag.Int64("scale", 1, "divide workload sizes by this factor")
	list := flag.Bool("list", false, "list experiment names and exit")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}

	runner := bench.NewRunner()
	runner.Scale = *scale
	if !*quiet {
		runner.Progress = os.Stderr
	}

	want := map[string]bool{}
	all := *exp == "all" || *exp == ""
	for _, name := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(name)] = true
	}

	start := time.Now()
	ran := 0
	for _, e := range bench.Experiments() {
		if !all && !want[e.Name] {
			continue
		}
		if err := e.Run(os.Stdout, runner); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q (try -list)\n", *exp)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "%d experiments in %.1fs\n", ran, time.Since(start).Seconds())
	}
}
