package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"compreuse"
	"compreuse/internal/obs"
	"compreuse/internal/reused"
)

// crcbench fleet is the distributed-tier demo: it boots an in-process
// crcserve fleet (each node with a warm-snapshot file), drives it
// through a Pool-backed TieredMemo from many workers, kills one node
// mid-run, and restarts it from its drain-time snapshot — then reports
// what the paper's economics look like when the reuse table is a
// consistent-hash ring instead of a single process: per-node hit
// rates, read failovers, replica-write drops, and whether any Do call
// ever failed (none may: Do computes locally when the whole ring is
// unreachable, and reads fail over within a single call otherwise).

// fleetNode is one in-process crcserve instance the demo can kill and
// resurrect.
type fleetNode struct {
	addr string
	snap string
	srv  *reused.Server
	done chan error
	// warmSegs/warmEntries count what the startup restore brought back
	// (zero on a cold boot).
	warmSegs, warmEntries int
}

func startFleetNode(addr, snap string, drain time.Duration, govWindow int) (*fleetNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := reused.New(reused.Config{
		DrainGrace:    drain,
		SnapshotPath:  snap,
		SnapshotEvery: time.Hour, // the demo exercises the drain-time snapshot
		Governor:      reused.GovernorConfig{Window: govWindow},
	})
	segs, entries, err := srv.RestoreFile(snap)
	if err != nil {
		ln.Close()
		return nil, err
	}
	n := &fleetNode{addr: ln.Addr().String(), snap: snap, srv: srv,
		done: make(chan error, 1), warmSegs: segs, warmEntries: entries}
	go func() { n.done <- srv.Serve(ln) }()
	return n, nil
}

func (n *fleetNode) stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := n.srv.Shutdown(ctx); err != nil {
		return err
	}
	return nil
}

// fleetReport is what one fleet demo run measured; the smoke test
// asserts on it directly.
type fleetReport struct {
	Nodes, Replicas, Workers int
	Elapsed                  time.Duration
	Tiered                   compreuse.TieredStats
	NodeStats                []compreuse.PoolNodeStats
	ReplicaDrops             int64
	VictimAddr               string
	// WarmStats is the victim's segment statistics read right after its
	// restart, before this process sent it any PUT: nonzero Hits /
	// Resident here are the snapshot speaking.
	WarmStats    compreuse.RemoteStats
	WarmSegments int
	WarmEntries  int
	// Stitched counts traces whose spans cross the wire (a tiered.do
	// root plus at least one srv.* span); FailoverStitched is the subset
	// whose pool.get hopped past a down node mid-trace.
	Stitched         int
	FailoverStitched int
	// breakdown is the per-span-name latency table behind Stitched.
	breakdown *obs.Breakdown
}

func (r fleetReport) print(w io.Writer) {
	fmt.Fprintf(w, "fleet: %d nodes (replicas=%d), %d workers, %v\n",
		r.Nodes, r.Replicas, r.Workers, r.Elapsed.Round(time.Millisecond))
	t := r.Tiered
	fmt.Fprintf(w, "tiered: %d calls  L1 %d  L2 %d  computed %d  bypassed %d  remote errors %d\n",
		t.Calls, t.L1Hits, t.L2Hits, t.Computes, t.Bypassed, t.Errors)
	for _, ns := range r.NodeStats {
		state := "up"
		if ns.Down {
			state = "DOWN"
		}
		fmt.Fprintf(w, "node %-21s %-4s hit-rate %5.1f%%  probes %-7d resident %-6d failovers %d\n",
			ns.Addr, state, 100*ns.HitRate(), ns.Stats.Probes, ns.Stats.Resident, ns.Failovers)
	}
	fmt.Fprintf(w, "replica writes dropped: %d\n", r.ReplicaDrops)
	if r.VictimAddr != "" {
		warmRate := 0.0
		if r.WarmStats.Probes > 0 {
			warmRate = 100 * float64(r.WarmStats.Hits) / float64(r.WarmStats.Probes)
		}
		fmt.Fprintf(w, "victim %s restarted warm: %d segments / %d entries restored, "+
			"hit-rate %.1f%% and %d resident before its first new PUT\n",
			r.VictimAddr, r.WarmSegments, r.WarmEntries, warmRate, r.WarmStats.Resident)
	}
	if r.breakdown != nil {
		total := len(r.breakdown.Traces)
		// Guard the share computation: a short or unlucky sampling run
		// records traces without stitching any, and dividing by a zero
		// stitched count would print NaN/Inf here.
		if r.Stitched > 0 {
			fmt.Fprintf(w, "traces: %d total, %d stitched across the wire (%.1f%%), %d through a failover\n",
				total, r.Stitched, 100*float64(r.Stitched)/float64(total), r.FailoverStitched)
		} else {
			fmt.Fprintf(w, "traces: %d total, no stitched traces\n", total)
		}
		r.breakdown.Format(w, 1)
	}
}

// fleetMain runs the demo: boot, load, kill, restart warm, report.
func fleetMain(args []string, out, logw io.Writer) (fleetReport, error) {
	fs := flag.NewFlagSet("crcbench fleet", flag.ContinueOnError)
	fs.SetOutput(logw)
	nodes := fs.Int("nodes", 3, "fleet size (in-process crcserve instances)")
	replicas := fs.Int("replicas", 2, "copies of each record, primary included")
	workers := fs.Int("workers", 0, "concurrent Do callers; 0 = GOMAXPROCS")
	dur := fs.Duration("dur", 3*time.Second, "traffic duration")
	keys := fs.Int("keys", 2048, "distinct keys in the stream")
	cost := fs.Duration("cost", 20*time.Microsecond,
		"modeled computation cost per fleet-wide miss")
	kill := fs.Bool("kill", true, "kill one node mid-run and restart it from its snapshot")
	gov := fs.Bool("gov", false,
		"run the formula-3 admission governor on the nodes (off by default: the demo is "+
			"about routing and snapshots, and a BYPASS/READMIT cycle resets the counters "+
			"the warm-restart report reads)")
	snapDir := fs.String("snap-dir", "", "snapshot directory (default: a fresh temp dir)")
	seed := fs.Int64("seed", 1, "key-stream seed")
	trace := fs.Int("trace", 16,
		"trace every Nth Do end to end (1 = all, 0 disables); prints the latency breakdown")
	if err := fs.Parse(args); err != nil {
		return fleetReport{}, err
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *trace > 0 {
		// A deep ring: the demo wants traces from before the kill to
		// survive until the report, alongside everything after.
		obs.ResetTraces()
		obs.EnableTrace(*trace, 1<<16)
		defer obs.DisableTrace()
	}
	if *nodes < 1 {
		return fleetReport{}, fmt.Errorf("-nodes must be >= 1")
	}
	if *snapDir == "" {
		d, err := os.MkdirTemp("", "crcfleet")
		if err != nil {
			return fleetReport{}, err
		}
		defer os.RemoveAll(d)
		*snapDir = d
	}

	govWindow := -1 // disabled
	if *gov {
		govWindow = 0 // server default
	}

	// Boot the fleet. Drain grace is short: the demo's kill is graceful
	// (that is what produces the snapshot), and clients re-route anyway.
	fleet := make([]*fleetNode, *nodes)
	for i := range fleet {
		n, err := startFleetNode("127.0.0.1:0",
			filepath.Join(*snapDir, fmt.Sprintf("node-%d.snap", i)), 200*time.Millisecond, govWindow)
		if err != nil {
			return fleetReport{}, err
		}
		defer n.stop()
		fleet[i] = n
	}
	addrs := make([]string, len(fleet))
	for i, n := range fleet {
		addrs[i] = n.addr
	}

	pool, err := compreuse.DialPool(compreuse.PoolConfig{
		Addrs:       addrs,
		Replicas:    *replicas,
		RedialEvery: 50 * time.Millisecond,
	})
	if err != nil {
		return fleetReport{}, err
	}
	defer pool.Close()

	const segName = "fleetdemo"
	tm, err := compreuse.NewTieredMemoFleet(pool, compreuse.TieredMemoConfig{
		Name: segName,
		// A tiny LRU L1 keeps the local tier honest while forcing most
		// hits across the wire, where the ring is.
		L1Entries: 64, L1LRU: true, L1Shards: 4,
	})
	if err != nil {
		return fleetReport{}, err
	}
	pseg, err := pool.Segment(segName, compreuse.SegmentConfig{OutWords: 1})
	if err != nil {
		return fleetReport{}, err
	}

	keyBuf := make([][]byte, *keys)
	for i := range keyBuf {
		keyBuf[i] = []byte(fmt.Sprintf("fleet-key-%08d", i))
	}

	start := time.Now()
	deadline := start.Add(*dur)
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(id)))
			for !stop.Load() && time.Now().Before(deadline) {
				k := keyBuf[rng.Intn(len(keyBuf))]
				tm.Do(k, func() uint64 { return spinFor(*cost) })
			}
		}(w)
	}

	rep := fleetReport{Nodes: *nodes, Replicas: *replicas, Workers: *workers}
	// preSpans snapshots the ring while the victim is still down, so the
	// failover-era traces survive even if later traffic overwrites them;
	// Summarize dedups the overlap with the final snapshot.
	var preSpans []obs.SpanRecord
	if *kill && *nodes > 1 {
		// Kill the victim at 40% of the run — gracefully, so its final
		// snapshot carries everything it acknowledged — and restart it at
		// 70% from that snapshot, on the same address so the pool's
		// redial loop finds it.
		victim := fleet[*nodes-1]
		rep.VictimAddr = victim.addr
		time.Sleep(time.Until(start.Add(*dur * 4 / 10)))
		if err := victim.stop(); err != nil {
			stop.Store(true)
			wg.Wait()
			return rep, fmt.Errorf("kill %s: %w", victim.addr, err)
		}
		fmt.Fprintf(logw, "fleet: killed %s (snapshot at %s)\n", victim.addr, victim.snap)

		time.Sleep(time.Until(start.Add(*dur * 7 / 10)))
		if *trace > 0 {
			preSpans = obs.TraceSpans()
		}
		reborn, err := startFleetNode(victim.addr, victim.snap, 200*time.Millisecond, govWindow)
		if err != nil {
			stop.Store(true)
			wg.Wait()
			return rep, fmt.Errorf("restart %s: %w", victim.addr, err)
		}
		defer reborn.stop()
		fleet[*nodes-1] = reborn
		rep.WarmSegments = reborn.warmSegs
		rep.WarmEntries = reborn.warmEntries

		// Interrogate the reborn node over a dedicated client before the
		// pool (or anyone) PUTs to it: restored statistics are the proof
		// of warmth.
		probe, err := compreuse.DialCache(compreuse.ClientConfig{Addr: reborn.addr, Conns: 1})
		if err == nil {
			if seg, serr := probe.Segment(segName, compreuse.SegmentConfig{OutWords: 1}); serr == nil {
				if st, werr := seg.Stats(); werr == nil {
					rep.WarmStats = st
				}
			}
			probe.Close()
		}
		fmt.Fprintf(logw, "fleet: restarted %s warm (hits %d, resident %d)\n",
			reborn.addr, rep.WarmStats.Hits, rep.WarmStats.Resident)
	}

	wg.Wait()
	rep.Elapsed = time.Since(start)
	rep.Tiered = tm.Stats()
	rep.NodeStats = pseg.NodeStats()
	rep.ReplicaDrops = pseg.ReplicaDrops()
	if *trace > 0 {
		bd := obs.Summarize(append(preSpans, obs.TraceSpans()...))
		rep.breakdown = &bd
		rep.Stitched = bd.Stitched
		rep.FailoverStitched = countFailoverStitched(&bd)
	}
	rep.print(out)
	return rep, nil
}

// countFailoverStitched counts the stitched traces that rode through a
// read failover: a pool.get span whose hops annotation is nonzero means
// that call skipped at least one down node before being served.
func countFailoverStitched(b *obs.Breakdown) int {
	n := 0
	for i := range b.Traces {
		tr := &b.Traces[i]
		if !tr.Stitched() {
			continue
		}
		for j := range tr.Spans {
			sp := &tr.Spans[j]
			if sp.Name != "pool.get" {
				continue
			}
			if hops, ok := sp.Annotation("hops"); ok && hops > 0 {
				n++
				break
			}
		}
	}
	return n
}

// spinFor busy-loops for d, modeling a computation whose cost C the
// governor weighs; the returned value depends on the loop so it cannot
// be optimized away.
func spinFor(d time.Duration) uint64 {
	end := time.Now().Add(d)
	var acc uint64
	for time.Now().Before(end) {
		acc++
	}
	return acc | 1
}
