package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"compreuse/internal/bench"
	"compreuse/internal/core"
)

// The -json flag serializes a completed crcbench run as a single document:
// run metadata, each experiment's rendered output, and — for every pipeline
// run the experiments shared — the measured outcome with the full decision
// ledger. Schema changes bump the "schema" string.

type jsonDoc struct {
	Schema      string             `json:"schema"`
	Date        string             `json:"date"`
	GoVersion   string             `json:"go_version"`
	Scale       int64              `json:"scale"`
	Experiments []jsonExperiment   `json:"experiments"`
	Runs        map[string]jsonRun `json:"runs"`
}

type jsonExperiment struct {
	Name   string `json:"name"`
	Desc   string `json:"desc"`
	Output string `json:"output"`
}

// jsonRun is one memoized pipeline run ("program/level" keyed).
type jsonRun struct {
	Program             string                `json:"program"`
	OptLevel            string                `json:"opt_level"`
	Speedup             float64               `json:"speedup"`
	EnergySaving        float64               `json:"energy_saving"`
	BaselineCycles      int64                 `json:"baseline_cycles"`
	ReuseCycles         int64                 `json:"reuse_cycles"`
	SegmentsAnalyzed    int                   `json:"segments_analyzed"`
	SegmentsProfiled    int                   `json:"segments_profiled"`
	SegmentsTransformed int                   `json:"segments_transformed"`
	Tables              []jsonTable           `json:"tables,omitempty"`
	Ledger              []core.DecisionRecord `json:"ledger"`
}

type jsonTable struct {
	Name       string `json:"name"`
	Entries    int    `json:"entries"`
	SizeBytes  int    `json:"size_bytes"`
	Resident   int    `json:"resident"`
	Probes     int64  `json:"probes"`
	Hits       int64  `json:"hits"`
	Collisions int64  `json:"collisions"`
	Evictions  int64  `json:"evictions"`
	// Dep marks a dependence-tracked footprint trie (crcbench/3).
	Dep bool `json:"dep,omitempty"`
}

// buildJSONDoc assembles the export document from a finished run.
func buildJSONDoc(runner *bench.Runner, results []expResult) *jsonDoc {
	doc := &jsonDoc{
		// crcbench/2: ledger records gained static_reuse_rate,
		// static_class, static_c_cycles and static_o_cycles (the
		// profiler-free admission prior).
		// crcbench/3: ledger records gained dep_key_width,
		// full_key_width and dep_hit_rate (the dependence-key second
		// chance), and table entries a "dep" marker. Additive only:
		// crcbench/2 consumers keep decoding.
		Schema:    "crcbench/3",
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Scale:     runner.Scale,
		Runs:      map[string]jsonRun{},
	}
	for _, r := range results {
		doc.Experiments = append(doc.Experiments, jsonExperiment(r))
	}

	reports := runner.Reports()
	keys := make([]string, 0, len(reports))
	for k := range reports {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		rep := reports[key]
		run := jsonRun{
			Program:             rep.Name,
			OptLevel:            rep.OptLevel,
			Speedup:             rep.Speedup(),
			EnergySaving:        rep.EnergySaving(),
			BaselineCycles:      rep.Baseline.Cycles,
			ReuseCycles:         rep.Reuse.Cycles,
			SegmentsAnalyzed:    rep.SegmentsAnalyzed,
			SegmentsProfiled:    rep.SegmentsProfiled,
			SegmentsTransformed: rep.SegmentsTransformed,
			Ledger:              rep.Ledger,
		}
		for _, t := range rep.Tables {
			run.Tables = append(run.Tables, jsonTable{
				Name:       t.Name,
				Entries:    t.Entries,
				SizeBytes:  t.SizeBytes,
				Resident:   t.Resident,
				Probes:     t.Stats.Probes,
				Hits:       t.Stats.Hits,
				Collisions: t.Stats.Collisions,
				Evictions:  t.Stats.Evictions,
				Dep:        t.Dep,
			})
		}
		doc.Runs[key] = run
	}
	return doc
}

// writeJSONDoc writes the export document to path.
func writeJSONDoc(path string, runner *bench.Runner, results []expResult) error {
	data, err := json.MarshalIndent(buildJSONDoc(runner, results), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
