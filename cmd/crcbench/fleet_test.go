package main

import (
	"io"
	"strings"
	"testing"

	"compreuse/internal/obs"
)

// TestFleetDemo runs the whole kill-and-warm-restart scenario scaled
// down: 3 nodes, a short burst of load, one graceful kill, one restart
// from the drain-time snapshot. The acceptance bar is the ISSUE's: no
// Do call may fail (remote errors are absorbed by computing locally,
// and with a live replica they should not even occur), and the
// restarted node must come back warm from its snapshot.
func TestFleetDemo(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet demo runs seconds of wall-clock load")
	}
	var out strings.Builder
	rep, err := fleetMain([]string{
		"-nodes", "3", "-workers", "2", "-dur", "1500ms",
		"-keys", "512", "-cost", "5us", "-trace", "1",
	}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tiered.Calls == 0 {
		t.Fatal("no Do calls recorded")
	}
	if rep.Tiered.Errors != 0 {
		t.Errorf("%d Do calls fell back on remote errors, want 0 (reads must fail over inside Get)",
			rep.Tiered.Errors)
	}
	if rep.VictimAddr == "" {
		t.Fatal("no node was killed")
	}
	if rep.WarmSegments == 0 || rep.WarmEntries == 0 {
		t.Errorf("victim restarted cold (%d segments / %d entries), want a warm snapshot restore",
			rep.WarmSegments, rep.WarmEntries)
	}
	if rep.WarmStats.Resident == 0 {
		t.Errorf("victim reports 0 resident entries after warm restart; output:\n%s", out.String())
	}
	if rep.WarmStats.Probes == 0 || rep.WarmStats.Hits == 0 {
		t.Errorf("victim's restored stats carry no history (probes %d, hits %d); warm hit rate must be nonzero",
			rep.WarmStats.Probes, rep.WarmStats.Hits)
	}
	if len(rep.NodeStats) != 3 {
		t.Errorf("NodeStats for %d nodes, want 3", len(rep.NodeStats))
	}
	// Tracing at -trace 1: every Do that crossed the wire must have
	// stitched into a client-root + server-span trace, and the kill
	// window must have produced at least one trace that rode a failover.
	if rep.Stitched == 0 {
		t.Errorf("no stitched traces recorded; output:\n%s", out.String())
	}
	if rep.FailoverStitched == 0 {
		t.Errorf("no trace spans a failover (pool.get hops > 0); output:\n%s", out.String())
	}
}

// TestFleetReportNoStitchedTraces pins the zero-stitched print path: a
// traced fleet run whose sampling recorded traces but stitched none
// must say "no stitched traces" rather than divide into NaN/Inf.
func TestFleetReportNoStitchedTraces(t *testing.T) {
	rep := fleetReport{
		Nodes: 3, Replicas: 2, Workers: 2,
		breakdown: &obs.Breakdown{
			Traces: []obs.TraceSummary{
				{Trace: 0xC, Spans: []obs.SpanRecord{{Trace: 0xC, Span: 1, Kind: obs.KindRoot, Name: "tiered.do", Dur: 900}}},
			},
			Stats: []obs.SpanStat{{Name: "tiered.do", Count: 1, TotalNS: 900, MaxNS: 900, MaxTrace: 0xC}},
		},
	}
	var sb strings.Builder
	rep.print(&sb)
	out := sb.String()
	if !strings.Contains(out, "traces: 1 total, no stitched traces") {
		t.Errorf("missing zero-stitched notice in:\n%s", out)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("report printed %s:\n%s", bad, out)
		}
	}
}
