package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compreuse"
	"compreuse/internal/reused"
	"compreuse/internal/reusetab"
)

// The perfjson subcommand measures the runtime's performance envelope —
// the in-process hot path (probe/record/memo-hit ns and allocs per op)
// and the networked tier (GET throughput and RTT percentiles over TCP
// loopback and a unix-domain socket) — and emits one JSON document.
// Committed snapshots (BENCH_*.json) form the perf trajectory; the
// -compare flag diffs a fresh run against a committed baseline and
// fails hard when the hot path regresses on allocations (timing metrics
// only warn: CI machines are noisy, allocation counts are not).
//
// Schema changes bump perfSchema.

const perfSchema = "crcbench-perf/1"

// perfRegressPct is the compare gate: a metric more than 10% worse than
// the baseline is a regression.
const perfRegressPct = 0.10

type perfDoc struct {
	Schema    string                      `json:"schema"`
	Date      string                      `json:"date"`
	GoVersion string                      `json:"go_version"`
	HotPath   map[string]perfHotMetric    `json:"hot_path"`
	Server    map[string]perfServerMetric `json:"server"`
}

// perfHotMetric is one in-process hot-path measurement.
type perfHotMetric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// perfServerMetric is one transport's loadgen measurement: warm-GET
// throughput and client-observed RTT percentiles.
type perfServerMetric struct {
	OpsPerSec float64 `json:"ops_per_sec"`
	GetP50NS  int64   `json:"get_p50_ns"`
	GetP99NS  int64   `json:"get_p99_ns"`
}

func perfJSONMain(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("crcbench perfjson", flag.ContinueOnError)
	fs.SetOutput(logw)
	out := fs.String("o", "", "write the measurement JSON to this file")
	baseline := fs.String("compare", "",
		"baseline JSON to diff against; exit nonzero on a hard (allocs/op) regression")
	dur := fs.Duration("dur", 750*time.Millisecond, "traffic duration per transport")
	workers := fs.Int("workers", 4, "concurrent GET workers per transport")
	keys := fs.Int("keys", 256, "distinct warm keys per transport")
	if err := fs.Parse(args); err != nil {
		return err
	}

	doc, err := measurePerf(*dur, *workers, *keys, logw)
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", *out, err)
		}
		fmt.Fprintf(logw, "wrote %s\n", *out)
	} else {
		fmt.Fprintf(logw, "%s\n", data)
	}

	if *baseline != "" {
		old, err := readPerfDoc(*baseline)
		if err != nil {
			return fmt.Errorf("-compare: %w", err)
		}
		hard := comparePerf(old, doc, logw)
		if len(hard) > 0 {
			return fmt.Errorf("%d hard perf regression(s) against %s", len(hard), *baseline)
		}
		fmt.Fprintf(logw, "no hard regressions against %s\n", *baseline)
	}
	return nil
}

func readPerfDoc(path string) (*perfDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc perfDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != perfSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, perfSchema)
	}
	return &doc, nil
}

// measurePerf runs every measurement and assembles the document.
func measurePerf(dur time.Duration, workers, keys int, logw io.Writer) (*perfDoc, error) {
	doc := &perfDoc{
		Schema:    perfSchema,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		HotPath:   map[string]perfHotMetric{},
		Server:    map[string]perfServerMetric{},
	}

	fmt.Fprintf(logw, "measuring in-process hot path...\n")
	for name, bench := range hotPathBenchmarks() {
		r := testing.Benchmark(bench)
		m := perfHotMetric{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
		}
		doc.HotPath[name] = m
		fmt.Fprintf(logw, "  %-18s %8.1f ns/op  %5.1f allocs/op\n", name, m.NsPerOp, m.AllocsPerOp)
	}

	sockDir, err := os.MkdirTemp("", "crcbench-perf")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(sockDir)
	transports := []struct{ name, listenNet, listenAddr string }{
		{"tcp", "tcp", "127.0.0.1:0"},
		{"unix", "unix", filepath.Join(sockDir, "crc.sock")},
	}
	for _, tr := range transports {
		fmt.Fprintf(logw, "measuring %s transport (%v)...\n", tr.name, dur)
		m, err := measureTransport(tr.listenNet, tr.listenAddr, dur, workers, keys)
		if err != nil {
			return nil, fmt.Errorf("%s transport: %w", tr.name, err)
		}
		doc.Server[tr.name] = m
		fmt.Fprintf(logw, "  %-5s %9.0f ops/s  GET p50 %v  p99 %v\n",
			tr.name, m.OpsPerSec, time.Duration(m.GetP50NS), time.Duration(m.GetP99NS))
	}
	return doc, nil
}

// hotPathBenchmarks builds the in-process measurements. They mirror the
// zero-alloc assertions in the test suite; here the numbers are recorded
// as the trajectory CI diffs against.
func hotPathBenchmarks() map[string]func(*testing.B) {
	mkKeys := func(n int) [][]byte {
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = reusetab.AppendInt(reusetab.AppendInt(nil, int64(i)), int64(i*31))
		}
		return keys
	}
	return map[string]func(*testing.B){
		"table_probe": func(b *testing.B) {
			tab := reusetab.New(reusetab.Config{Name: "perf", Segs: 1, KeyBytes: 8,
				OutWords: []int{2}, OutBytes: []int{16}})
			keys := mkKeys(256)
			outs := []uint64{1, 2}
			for _, k := range keys {
				tab.Probe(0, k)
				tab.Record(0, k, outs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, hit := tab.Probe(0, keys[i%len(keys)]); !hit {
					b.Fatal("warm probe missed")
				}
			}
		},
		"table_record": func(b *testing.B) {
			tab := reusetab.New(reusetab.Config{Name: "perf", Segs: 1, KeyBytes: 8,
				OutWords: []int{2}, OutBytes: []int{16}})
			keys := mkKeys(256)
			outs := []uint64{1, 2}
			for _, k := range keys {
				tab.Probe(0, k)
				tab.Record(0, k, outs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.Record(0, keys[i%len(keys)], outs)
			}
		},
		"sharded_probe": func(b *testing.B) {
			tab := reusetab.NewSharded(reusetab.Config{Name: "perf", Segs: 1, KeyBytes: 8,
				OutWords: []int{1}, OutBytes: []int{8}}, 8)
			keys := mkKeys(256)
			for _, k := range keys {
				tab.Probe(0, k)
				tab.Record(0, k, []uint64{9})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, hit := tab.ProbeWord(0, keys[i%len(keys)]); !hit {
					b.Fatal("warm probe missed")
				}
			}
		},
		"memoized_hit": func(b *testing.B) {
			m := compreuse.NewMemoized(func(x int) int { return x * x })
			for i := 0; i < 64; i++ {
				m.Call(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Call(i % 64)
			}
		},
		"depmemo_hit": func(b *testing.B) {
			m := compreuse.NewDepMemo(compreuse.DepConfig{Name: "perf"})
			f := func(d *compreuse.Dep) uint64 { return uint64(d.Get(0)) * uint64(d.Get(1)) }
			var in compreuse.DepInputs
			for i := int64(0); i < 64; i++ {
				m.Do(in.Reset().Int(i).Int(i+1), f)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int64(i & 63)
				if got := m.Do(in.Reset().Int(k).Int(k+1), f); got != uint64(k)*uint64(k+1) {
					b.Fatal("warm dep hit missed")
				}
			}
		},
		"memo_table_hit": func(b *testing.B) {
			m := compreuse.NewMemoTable(compreuse.MemoTableConfig{Name: "perf"})
			var kb compreuse.KeyBuf
			for i := 0; i < 64; i++ {
				k := kb.Reset().Int(int64(i)).Bytes()
				m.Store(k, uint64(i))
				m.Lookup(k)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := m.Lookup(kb.Reset().Int(int64(i % 64)).Bytes()); !ok {
					b.Fatal("warm lookup missed")
				}
			}
		},
	}
}

// measureTransport boots an in-process crcserve core on one listener,
// warms a segment, then drives concurrent GETs at it for dur, reporting
// throughput and client-observed RTT percentiles.
func measureTransport(network, address string, dur time.Duration, workers, nkeys int) (perfServerMetric, error) {
	ln, err := net.Listen(network, address)
	if err != nil {
		return perfServerMetric{}, err
	}
	srv := reused.New(reused.Config{
		// Keep the governor out of the measurement: every probe is
		// admitted, so the percentiles are pure transport + table.
		Governor: reused.GovernorConfig{Window: -1},
	})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		<-serveDone
		if network == "unix" {
			os.Remove(address)
		}
	}()

	addr := ln.Addr().String()
	if network == "unix" {
		addr = "unix://" + addr
	}
	c, err := compreuse.DialCache(compreuse.ClientConfig{Addr: addr, Conns: 2})
	if err != nil {
		return perfServerMetric{}, err
	}
	defer c.Close()
	seg, err := c.Segment("perf", compreuse.SegmentConfig{})
	if err != nil {
		return perfServerMetric{}, err
	}

	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("perf-key-%08d", i))
		if err := seg.Put(keys[i], []uint64{uint64(i)}, time.Millisecond); err != nil {
			return perfServerMetric{}, err
		}
	}

	var (
		ops      atomic.Int64
		sampleMu sync.Mutex
		samples  []int64
	)
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := make([]int64, 0, 4096)
			for time.Now().Before(deadline) {
				k := keys[rng.Intn(len(keys))]
				t0 := time.Now()
				_, status, err := seg.Get(k)
				rtt := time.Since(t0)
				if err != nil {
					errCh <- err
					return
				}
				if status != compreuse.Hit {
					errCh <- fmt.Errorf("warm key %q: status %v", k, status)
					return
				}
				ops.Add(1)
				local = append(local, rtt.Nanoseconds())
			}
			sampleMu.Lock()
			samples = append(samples, local...)
			sampleMu.Unlock()
		}(int64(w) + 1)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return perfServerMetric{}, err
	default:
	}
	if len(samples) == 0 {
		return perfServerMetric{}, fmt.Errorf("no samples in %v", dur)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return perfServerMetric{
		OpsPerSec: float64(ops.Load()) / elapsed.Seconds(),
		GetP50NS:  samples[len(samples)/2],
		GetP99NS:  samples[len(samples)*99/100],
	}, nil
}

// perfRegression is one metric that got worse than the gate allows.
type perfRegression struct {
	Metric   string
	Old, New float64
	Hard     bool
}

// comparePerf diffs doc against the baseline and logs every regression,
// returning the hard ones (allocs/op: the compiler either elides the
// allocation or it does not — noise is no excuse). Timing and
// throughput metrics warn only. Metrics missing from the baseline are
// new and pass trivially.
func comparePerf(old, doc *perfDoc, logw io.Writer) []perfRegression {
	var hard []perfRegression
	report := func(r perfRegression) {
		kind := "warning"
		if r.Hard {
			kind = "REGRESSION"
			hard = append(hard, r)
		}
		fmt.Fprintf(logw, "perf %s: %s %.1f -> %.1f (gate: %.0f%%)\n",
			kind, r.Metric, r.Old, r.New, perfRegressPct*100)
	}
	for name, om := range old.HotPath {
		nm, ok := doc.HotPath[name]
		if !ok {
			fmt.Fprintf(logw, "perf warning: baseline metric hot_path.%s disappeared\n", name)
			continue
		}
		// Hard gate. 10% of a zero-alloc baseline is zero, so any new
		// allocation on a previously clean path trips it.
		if nm.AllocsPerOp > om.AllocsPerOp*(1+perfRegressPct)+1e-9 {
			report(perfRegression{"hot_path." + name + ".allocs_per_op",
				om.AllocsPerOp, nm.AllocsPerOp, true})
		}
		if nm.NsPerOp > om.NsPerOp*(1+perfRegressPct) {
			report(perfRegression{"hot_path." + name + ".ns_per_op",
				om.NsPerOp, nm.NsPerOp, false})
		}
	}
	for name, om := range old.Server {
		nm, ok := doc.Server[name]
		if !ok {
			fmt.Fprintf(logw, "perf warning: baseline metric server.%s disappeared\n", name)
			continue
		}
		if nm.OpsPerSec < om.OpsPerSec*(1-perfRegressPct) {
			report(perfRegression{"server." + name + ".ops_per_sec",
				om.OpsPerSec, nm.OpsPerSec, false})
		}
		if float64(nm.GetP50NS) > float64(om.GetP50NS)*(1+perfRegressPct) {
			report(perfRegression{"server." + name + ".get_p50_ns",
				float64(om.GetP50NS), float64(nm.GetP50NS), false})
		}
		if float64(nm.GetP99NS) > float64(om.GetP99NS)*(1+perfRegressPct) {
			report(perfRegression{"server." + name + ".get_p99_ns",
				float64(om.GetP99NS), float64(nm.GetP99NS), false})
		}
	}
	return hard
}
