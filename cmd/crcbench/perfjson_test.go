package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestComparePerfGate pins the gate semantics: allocs/op regressions are
// hard failures, timing and throughput regressions only warn, and
// improvements or new metrics pass silently.
func TestComparePerfGate(t *testing.T) {
	base := &perfDoc{
		Schema: perfSchema,
		HotPath: map[string]perfHotMetric{
			"table_probe": {NsPerOp: 60, AllocsPerOp: 0},
			"memo_hit":    {NsPerOp: 40, AllocsPerOp: 0},
		},
		Server: map[string]perfServerMetric{
			"tcp":  {OpsPerSec: 100000, GetP50NS: 30000, GetP99NS: 80000},
			"unix": {OpsPerSec: 150000, GetP50NS: 20000, GetP99NS: 60000},
		},
	}
	clone := func() *perfDoc {
		data, _ := json.Marshal(base)
		var d perfDoc
		json.Unmarshal(data, &d)
		return &d
	}

	t.Run("Identical", func(t *testing.T) {
		var log strings.Builder
		if hard := comparePerf(base, clone(), &log); len(hard) != 0 {
			t.Fatalf("identical docs regressed: %v\n%s", hard, log.String())
		}
	})

	t.Run("AllocRegressionIsHard", func(t *testing.T) {
		cur := clone()
		m := cur.HotPath["table_probe"]
		m.AllocsPerOp = 1 // a previously clean path started allocating
		cur.HotPath["table_probe"] = m
		var log strings.Builder
		hard := comparePerf(base, cur, &log)
		if len(hard) != 1 || hard[0].Metric != "hot_path.table_probe.allocs_per_op" {
			t.Fatalf("hard = %v, want the alloc regression\n%s", hard, log.String())
		}
	})

	t.Run("TimingRegressionWarnsOnly", func(t *testing.T) {
		cur := clone()
		m := cur.HotPath["table_probe"]
		m.NsPerOp = 90 // +50%
		cur.HotPath["table_probe"] = m
		s := cur.Server["tcp"]
		s.GetP50NS = 60000 // +100%
		s.OpsPerSec = 50000
		cur.Server["tcp"] = s
		var log strings.Builder
		if hard := comparePerf(base, cur, &log); len(hard) != 0 {
			t.Fatalf("timing regressions failed hard: %v", hard)
		}
		for _, want := range []string{
			"hot_path.table_probe.ns_per_op",
			"server.tcp.get_p50_ns",
			"server.tcp.ops_per_sec",
		} {
			if !strings.Contains(log.String(), want) {
				t.Errorf("no warning for %s in:\n%s", want, log.String())
			}
		}
	})

	t.Run("WithinGatePasses", func(t *testing.T) {
		cur := clone()
		m := cur.HotPath["table_probe"]
		m.NsPerOp = 64 // +6.7%, inside the 10% gate
		cur.HotPath["table_probe"] = m
		var log strings.Builder
		if hard := comparePerf(base, cur, &log); len(hard) != 0 || log.Len() != 0 {
			t.Fatalf("within-gate drift flagged: %v\n%s", hard, log.String())
		}
	})

	t.Run("ImprovementPasses", func(t *testing.T) {
		cur := clone()
		s := cur.Server["unix"]
		s.GetP50NS = 10000
		s.OpsPerSec = 300000
		cur.Server["unix"] = s
		var log strings.Builder
		if hard := comparePerf(base, cur, &log); len(hard) != 0 || log.Len() != 0 {
			t.Fatalf("improvement flagged: %v\n%s", hard, log.String())
		}
	})
}

// TestPerfJSONEndToEnd runs the real subcommand with a short traffic
// window and checks the document it writes: schema, zero-alloc hot
// paths, and both transports measured. This is the committed
// BENCH_*.json pipeline, end to end.
func TestPerfJSONEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks; skipped in -short")
	}
	out := filepath.Join(t.TempDir(), "perf.json")
	var log strings.Builder
	if err := perfJSONMain([]string{"-o", out, "-dur", "150ms", "-keys", "64"}, &log); err != nil {
		t.Fatalf("perfjson: %v\n%s", err, log.String())
	}
	doc, err := readPerfDoc(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table_probe", "table_record", "sharded_probe",
		"memoized_hit", "memo_table_hit"} {
		m, ok := doc.HotPath[name]
		if !ok {
			t.Fatalf("hot_path.%s missing", name)
		}
		if m.AllocsPerOp != 0 {
			t.Errorf("hot_path.%s: %.1f allocs/op, want 0", name, m.AllocsPerOp)
		}
		if m.NsPerOp <= 0 {
			t.Errorf("hot_path.%s: ns/op %v, want > 0", name, m.NsPerOp)
		}
	}
	for _, name := range []string{"tcp", "unix"} {
		m, ok := doc.Server[name]
		if !ok {
			t.Fatalf("server.%s missing", name)
		}
		if m.OpsPerSec <= 0 || m.GetP50NS <= 0 || m.GetP99NS < m.GetP50NS {
			t.Errorf("server.%s: implausible measurement %+v", name, m)
		}
	}

	// A fresh run compared against itself must pass the gate (timing
	// noise between two immediate runs stays warn-only by design).
	var cmpLog strings.Builder
	hard := comparePerf(doc, doc, &cmpLog)
	if len(hard) != 0 {
		t.Fatalf("self-compare regressed: %v", hard)
	}

	// Guard against a stale-schema baseline being silently accepted.
	if err := os.WriteFile(out, []byte(`{"schema":"bogus/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readPerfDoc(out); err == nil {
		t.Fatal("bogus schema accepted")
	}
}
