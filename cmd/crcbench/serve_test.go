package main

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// TestServeGracefulSignal runs the real serve subcommand and checks
// that SIGTERM produces a clean drain (serveMain returns nil) instead
// of killing the process mid-scrape.
func TestServeGracefulSignal(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- serveMain([]string{
			"-addr", "127.0.0.1:0", "-exp", "fig5", "-scale", "64", "-q",
		})
	}()
	// Let the listener come up and the signal handler install before
	// delivering the signal.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveMain returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}
