package compreuse

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"compreuse/internal/obs"
	"compreuse/internal/wire"
)

// Client metrics (live when obs is enabled, like everything else).
var (
	mRemoteRTT = obs.NewHistogram("crc_remote_rtt_ns",
		"remote reuse-cache round-trip latency in nanoseconds", obs.LatencyBuckets)
	mRemoteCalls = obs.NewCounter("crc_remote_calls_total",
		"requests sent to the remote reuse cache")
	mRemoteErrors = obs.NewCounter("crc_remote_errors_total",
		"remote reuse-cache requests that failed")
)

// ClientConfig configures a connection to a crcserve instance.
type ClientConfig struct {
	// Addr is the server's address: a TCP host:port, e.g. "cache:8345",
	// or a unix-domain socket path with the "unix://" scheme, e.g.
	// "unix:///run/crcserve.sock". The unix transport skips the loopback
	// TCP stack for co-located fleets, shrinking the round-trip share of
	// the lookup overhead O.
	Addr string
	// Conns is the connection-pool size; requests round-robin across
	// it. 0 means 2.
	Conns int
	// MaxInflight bounds the pipelined requests per pooled connection;
	// further callers block. 0 means 128.
	MaxInflight int
	// DialTimeout bounds connection establishment. 0 means 5s.
	DialTimeout time.Duration
}

func (c ClientConfig) conns() int {
	if c.Conns <= 0 {
		return 2
	}
	return c.Conns
}

func (c ClientConfig) maxInflight() int {
	if c.MaxInflight <= 0 {
		return 128
	}
	return c.MaxInflight
}

func (c ClientConfig) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 5 * time.Second
	}
	return c.DialTimeout
}

// Client talks to a remote reuse-cache server (cmd/crcserve) over the
// internal/wire protocol. It is safe for concurrent use: requests are
// pipelined over a small pool of connections (many callers share one
// in-flight window per connection, matched back by sequence number),
// concurrent GETs for the same key are deduplicated in flight
// (singleflight), and every response round-trip feeds a smoothed RTT
// estimate that is reported to the server — the server folds it into
// the lookup overhead O of its formula-3 admission governor.
type Client struct {
	cfg   ClientConfig
	conns []*clientConn
	next  atomic.Uint64

	// rttNS is the smoothed round-trip estimate, EWMA weight 1/8.
	rttNS atomic.Int64

	segMu sync.Mutex
	segs  map[string]*RemoteSegment

	sfMu sync.Mutex
	sf   map[sfKey]*sfCall

	closed atomic.Bool
}

type sfKey struct {
	seg uint32
	key string
}

type sfCall struct {
	done chan struct{}
	// ok is set by the leader on normal completion, before done closes.
	// A follower that observes !ok knows the leader panicked out of the
	// call and must retry instead of trusting the zero-valued result.
	ok     bool
	vals   []uint64
	status GetStatus
	err    error
}

// DialCache connects to a crcserve instance, establishing the whole
// connection pool eagerly so a misconfigured address fails at startup,
// not mid-traffic.
func DialCache(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("compreuse: ClientConfig.Addr is empty")
	}
	c := &Client{
		cfg:  cfg,
		segs: map[string]*RemoteSegment{},
		sf:   map[sfKey]*sfCall{},
	}
	for i := 0; i < cfg.conns(); i++ {
		cc, err := dialConn(cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, cc)
	}
	return c, nil
}

// Close tears down the connection pool. In-flight calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, cc := range c.conns {
		cc.close(ErrClientClosed)
	}
	return nil
}

// ErrClientClosed is returned by calls on a closed Client.
var ErrClientClosed = errors.New("compreuse: reuse-cache client closed")

// transportError wraps a failure of the connection itself — a dead
// socket, a closed client, an encode/decode error — as opposed to a
// per-request protocol error (FlagErr) the server answered with. The
// fleet Pool uses the distinction to decide whether a node is down
// (fail over and redial) or merely rejected one request.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// isTransportErr reports whether err (anywhere in its chain) is a
// connection-level failure rather than a server-answered protocol error.
func isTransportErr(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

// RTT returns the smoothed round-trip estimate to the server.
func (c *Client) RTT() time.Duration { return time.Duration(c.rttNS.Load()) }

// observeRTT folds one measured round-trip into the estimate, tagging
// the RTT histogram's exemplar with the request's trace id (0 =
// untraced) so a p99 spike points at a concrete trace. The
// load/compute/store is a CAS loop: a plain store would silently drop
// concurrent observations, and this estimate is what the server charges
// as the network half of overhead O — a lossy EWMA would bias the
// governor's formula-3 arithmetic under parallel callers.
func (c *Client) observeRTT(d time.Duration, tid uint64) {
	ns := d.Nanoseconds()
	if obs.On() {
		mRemoteRTT.ObserveTraced(ns, tid)
	}
	for {
		old := c.rttNS.Load()
		next := ns
		if old != 0 {
			next = old + (ns-old)/8
		}
		if c.rttNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// call sends one request over a pooled connection and waits for its
// response frame.
func (c *Client) call(req *wire.Frame) (wire.Frame, error) {
	if c.closed.Load() {
		return wire.Frame{}, &transportError{ErrClientClosed}
	}
	if obs.On() {
		mRemoteCalls.Inc()
	}
	cc := c.conns[c.next.Add(1)%uint64(len(c.conns))]
	start := time.Now()
	resp, err := cc.roundTrip(req)
	if err != nil {
		if obs.On() {
			mRemoteErrors.Inc()
		}
		return wire.Frame{}, &transportError{err}
	}
	c.observeRTT(time.Since(start), req.TraceID)
	if e := resp.Err(); e != nil {
		return wire.Frame{}, e
	}
	return resp, nil
}

// SegmentConfig describes the shared table a segment wants on the
// server. The first client to register a name fixes the geometry;
// later registrations share the existing table as-is.
type SegmentConfig struct {
	// Entries bounds the server-side table (0 = unbounded).
	Entries int
	// LRU selects associative LRU replacement over direct addressing.
	LRU bool
	// OutWords is the output width in 64-bit words (0 = 1).
	OutWords int
}

// RemoteSegment is a handle to one named segment's shared table.
type RemoteSegment struct {
	c        *Client
	id       uint32
	name     string
	outWords int
	// bypassed caches the server's last admission verdict so a
	// bypassed segment does not pay a round trip per call; every
	// bypassRecheck-th Get goes to the server anyway to notice
	// readmission.
	bypassed atomic.Bool
	sinceByp atomic.Int64
	l2Hits   atomic.Int64
	l2Misses atomic.Int64
	l2Bypass atomic.Int64

	// Batching state: Gets and Puts that arrive while a flight is in
	// progress queue up and leave as one MGET/MPUT frame when it
	// returns, so n concurrent misses cost one round trip instead of n.
	// getQ and putQ are independent (a GET flight does not delay PUTs).
	batchMu   sync.Mutex
	getQ      []*batchGet
	getFlying bool
	putQ      []*batchPut
	putFlying bool
}

// batchGet is one queued probe awaiting its (possibly shared) flight.
type batchGet struct {
	key    []byte
	tid    uint64 // trace id to stamp on the flight's frame (0 = untraced)
	done   chan struct{}
	vals   []uint64
	status GetStatus
	err    error
}

// batchPut is one queued record awaiting its flight.
type batchPut struct {
	key  []byte
	tid  uint64
	vals []uint64
	cost time.Duration
	done chan struct{}
	err  error
}

// batchTrace picks the trace id a coalesced flight's frame carries: the
// first traced member wins (one frame can only carry one id; the
// others' spans still record client-side, they just aren't stitched to
// this server execution).
func batchTraceGet(batch []*batchGet) uint64 {
	for _, bg := range batch {
		if bg.tid != 0 {
			return bg.tid
		}
	}
	return 0
}

func batchTracePut(batch []*batchPut) uint64 {
	for _, bp := range batch {
		if bp.tid != 0 {
			return bp.tid
		}
	}
	return 0
}

// bypassRecheck is how many locally short-circuited calls a bypassed
// segment makes between probes that check for readmission.
const bypassRecheck = 64

// Segment registers (or re-attaches to) a named segment on the server
// and returns its handle. Handles are cached per name.
func (c *Client) Segment(name string, cfg SegmentConfig) (*RemoteSegment, error) {
	c.segMu.Lock()
	if s, ok := c.segs[name]; ok {
		c.segMu.Unlock()
		return s, nil
	}
	c.segMu.Unlock()

	outWords := cfg.OutWords
	if outWords <= 0 {
		outWords = 1
	}
	req := &wire.Frame{Op: wire.OpHello, Name: name,
		Vals: []uint64{uint64(cfg.Entries), b2u(cfg.LRU), uint64(outWords)}}
	resp, err := c.call(req)
	if err != nil {
		return nil, fmt.Errorf("register segment %q: %w", name, err)
	}
	s := &RemoteSegment{c: c, id: resp.Seg, name: name, outWords: outWords}
	if len(resp.Vals) > 2 {
		s.outWords = int(resp.Vals[2])
	}
	c.segMu.Lock()
	if prior, ok := c.segs[name]; ok {
		s = prior
	} else {
		c.segs[name] = s
	}
	c.segMu.Unlock()
	return s, nil
}

// GetStatus classifies a remote probe's outcome.
type GetStatus int

// Get outcomes.
const (
	// Miss: the shared table has no value; compute and Put.
	Miss GetStatus = iota
	// Hit: the value came from the shared table.
	Hit
	// Bypass: the admission governor turned the segment off; compute
	// locally and skip the Put.
	Bypass
)

func (s GetStatus) String() string {
	switch s {
	case Hit:
		return "hit"
	case Bypass:
		return "bypass"
	default:
		return "miss"
	}
}

// Get probes the shared table. Concurrent Gets for the same key are
// coalesced into one round trip; every caller receives the same
// result. The returned slice is owned by the caller.
func (s *RemoteSegment) Get(key []byte) ([]uint64, GetStatus, error) {
	return s.GetTraced(key, obs.TraceCtx{})
}

// GetTraced is Get with a parent trace context: when the parent is
// sampled, the probe records an "rpc.get" span and stamps the trace id
// onto the wire frame (wire.FlagTraced), so the serving node's span
// stitches into the same trace. An unsampled context costs two
// branches over plain Get.
func (s *RemoteSegment) GetTraced(key []byte, tr obs.TraceCtx) ([]uint64, GetStatus, error) {
	sp := obs.StartSpan(tr, "rpc.get")
	vals, status, err := s.doGet(key, sp.TraceID())
	switch {
	case err != nil:
		sp.Outcome("err")
	case status == Hit:
		sp.Outcome("hit")
	case status == Bypass:
		sp.Outcome("bypass")
	default:
		sp.Outcome("miss")
	}
	sp.End()
	return vals, status, err
}

// doGet is the trace-id-carrying body of Get.
func (s *RemoteSegment) doGet(key []byte, tid uint64) ([]uint64, GetStatus, error) {
	// Short-circuit a known-bypassed segment, revalidating every
	// bypassRecheck calls so readmission is noticed.
	if s.bypassed.Load() && s.sinceByp.Add(1)%bypassRecheck != 0 {
		s.l2Bypass.Add(1)
		return nil, Bypass, nil
	}

	k := sfKey{seg: s.id, key: string(key)}
	c := s.c
	for {
		c.sfMu.Lock()
		if call, ok := c.sf[k]; ok {
			c.sfMu.Unlock()
			<-call.done
			if !call.ok {
				// The leader panicked out of its flight; its result is
				// garbage. Retry — this caller likely becomes the leader.
				continue
			}
			return append([]uint64(nil), call.vals...), call.status, call.err
		}
		call := &sfCall{done: make(chan struct{})}
		c.sf[k] = call
		c.sfMu.Unlock()

		// The map delete and the done close live in a defer so that a
		// panic anywhere in the leader's flight (the user-visible half of
		// it runs compute callbacks in TieredMemo) still unparks every
		// follower and clears the entry — otherwise one panic would hang
		// every future Get of this key forever. The panic itself is not
		// recovered: it propagates to the leader's caller.
		func() {
			defer func() {
				c.sfMu.Lock()
				delete(c.sf, k)
				c.sfMu.Unlock()
				close(call.done)
			}()
			call.vals, call.status, call.err = s.get(key, tid)
			call.ok = true
		}()
		return call.vals, call.status, call.err
	}
}

// get enqueues one probe for the flight loop and waits for its result.
// The caller blocks for the flight's round trip either way; what the
// queue buys is that every probe queued during an in-flight RTT leaves
// in a single MGET frame when it returns.
func (s *RemoteSegment) get(key []byte, tid uint64) ([]uint64, GetStatus, error) {
	bg := &batchGet{key: key, tid: tid, done: make(chan struct{})}
	s.batchMu.Lock()
	s.getQ = append(s.getQ, bg)
	if !s.getFlying {
		s.getFlying = true
		go s.getFlightLoop()
	}
	s.batchMu.Unlock()
	<-bg.done
	return bg.vals, bg.status, bg.err
}

// getFlightLoop drains the GET queue, one frame per iteration, until a
// drain finds it empty. A batch of one flies as a plain GET (identical
// wire cost to the unbatched client); larger batches fly as one MGET.
func (s *RemoteSegment) getFlightLoop() {
	for {
		s.batchMu.Lock()
		batch := s.getQ
		s.getQ = nil
		if len(batch) == 0 {
			s.getFlying = false
			s.batchMu.Unlock()
			return
		}
		s.batchMu.Unlock()
		s.flyGets(batch)
	}
}

func (s *RemoteSegment) flyGets(batch []*batchGet) {
	defer func() {
		for _, bg := range batch {
			close(bg.done)
		}
	}()
	if len(batch) == 1 {
		bg := batch[0]
		bg.vals, bg.status, bg.err = s.getOne(bg.key, bg.tid)
		return
	}
	req := &wire.Frame{Op: wire.OpMGet, Seg: s.id,
		Cost: uint64(s.c.rttNS.Load()), Items: make([]wire.Item, len(batch))}
	req.SetTrace(batchTraceGet(batch))
	for i, bg := range batch {
		req.Items[i].Key = bg.key
	}
	resp, err := s.c.call(req)
	switch {
	case err != nil:
		for _, bg := range batch {
			bg.status, bg.err = Miss, err
		}
	case resp.Flags&wire.FlagBypass != 0:
		s.bypassed.Store(true)
		s.l2Bypass.Add(int64(len(batch)))
		for _, bg := range batch {
			bg.status = Bypass
		}
	case len(resp.Items) != len(batch):
		err := fmt.Errorf("mget %q: %d response items, want %d",
			s.name, len(resp.Items), len(batch))
		for _, bg := range batch {
			bg.status, bg.err = Miss, err
		}
	default:
		s.bypassed.Store(false)
		for i, bg := range batch {
			// The response frame is owned by this flight (the read loop
			// decodes each response into a fresh frame), so items hand
			// their Vals over without a copy.
			if it := &resp.Items[i]; it.Flags&wire.FlagHit != 0 {
				bg.status, bg.vals = Hit, it.Vals
				s.l2Hits.Add(1)
			} else {
				bg.status = Miss
				s.l2Misses.Add(1)
			}
		}
	}
}

// getOne is the single-probe wire exchange.
func (s *RemoteSegment) getOne(key []byte, tid uint64) ([]uint64, GetStatus, error) {
	req := &wire.Frame{Op: wire.OpGet, Seg: s.id, Key: key,
		Cost: uint64(s.c.rttNS.Load())}
	req.SetTrace(tid)
	resp, err := s.c.call(req)
	if err != nil {
		return nil, Miss, err
	}
	switch {
	case resp.Flags&wire.FlagBypass != 0:
		s.bypassed.Store(true)
		s.l2Bypass.Add(1)
		return nil, Bypass, nil
	case resp.Flags&wire.FlagHit != 0:
		s.bypassed.Store(false)
		s.l2Hits.Add(1)
		return resp.Vals, Hit, nil
	default:
		s.bypassed.Store(false)
		s.l2Misses.Add(1)
		return nil, Miss, nil
	}
}

// Put records the outputs computed for key, reporting the measured
// computation cost — the paper's C, which the server's governor weighs
// against its measured overhead O. Skip the Put after a Bypass status.
// Concurrent Puts queued while one is in flight leave as a single MPUT
// frame, each carrying its own cost.
func (s *RemoteSegment) Put(key []byte, vals []uint64, cost time.Duration) error {
	return s.PutTraced(key, vals, cost, obs.TraceCtx{})
}

// PutTraced is Put with a parent trace context; when sampled it records
// an "rpc.put" span and the frame carries the trace id (see GetTraced).
func (s *RemoteSegment) PutTraced(key []byte, vals []uint64, cost time.Duration, tr obs.TraceCtx) error {
	sp := obs.StartSpan(tr, "rpc.put")
	err := s.doPut(key, vals, cost, sp.TraceID())
	if err != nil {
		sp.Outcome("err")
	} else {
		sp.Outcome("ok")
	}
	sp.End()
	return err
}

func (s *RemoteSegment) doPut(key []byte, vals []uint64, cost time.Duration, tid uint64) error {
	// Short-circuit a known-bypassed segment with the same periodic
	// revalidation as Get: every bypassRecheck-th Put goes to the server
	// anyway. Without the probe, a segment whose traffic is Put-heavy
	// (or whose Gets dried up) would stay locally bypassed forever after
	// a server-side readmission and silently drop records.
	if s.bypassed.Load() && s.sinceByp.Add(1)%bypassRecheck != 0 {
		return nil // the governor said stop; don't pay the round trip
	}
	bp := &batchPut{key: key, tid: tid, vals: vals, cost: cost, done: make(chan struct{})}
	s.batchMu.Lock()
	s.putQ = append(s.putQ, bp)
	if !s.putFlying {
		s.putFlying = true
		go s.putFlightLoop()
	}
	s.batchMu.Unlock()
	<-bp.done
	return bp.err
}

// putFlightLoop mirrors getFlightLoop for records.
func (s *RemoteSegment) putFlightLoop() {
	for {
		s.batchMu.Lock()
		batch := s.putQ
		s.putQ = nil
		if len(batch) == 0 {
			s.putFlying = false
			s.batchMu.Unlock()
			return
		}
		s.batchMu.Unlock()
		s.flyPuts(batch)
	}
}

func (s *RemoteSegment) flyPuts(batch []*batchPut) {
	defer func() {
		for _, bp := range batch {
			close(bp.done)
		}
	}()
	var resp wire.Frame
	var err error
	if len(batch) == 1 {
		bp := batch[0]
		req := &wire.Frame{Op: wire.OpPut, Seg: s.id,
			Key: bp.key, Vals: bp.vals, Cost: uint64(bp.cost.Nanoseconds())}
		req.SetTrace(bp.tid)
		resp, err = s.c.call(req)
	} else {
		req := &wire.Frame{Op: wire.OpMPut, Seg: s.id,
			Items: make([]wire.Item, len(batch))}
		req.SetTrace(batchTracePut(batch))
		for i, bp := range batch {
			req.Items[i] = wire.Item{Key: bp.key, Vals: bp.vals,
				Cost: uint64(bp.cost.Nanoseconds())}
		}
		resp, err = s.c.call(req)
	}
	if err != nil {
		for _, bp := range batch {
			bp.err = err
		}
		return
	}
	// Track the verdict both ways: a non-bypass acknowledgement clears a
	// stale local bypass flag (the server has readmitted the segment), so
	// the Put path revalidates symmetrically with the Get path.
	s.bypassed.Store(resp.Flags&wire.FlagBypass != 0)
}

// Flush empties the segment's server-side table and resets its
// admission state.
func (s *RemoteSegment) Flush() error {
	_, err := s.c.call(&wire.Frame{Op: wire.OpFlush, Seg: s.id})
	if err == nil {
		s.bypassed.Store(false)
	}
	return err
}

// RemoteStats is a snapshot of a segment's server-side counters and
// governor estimates.
type RemoteStats struct {
	Probes, Hits, Misses, Records int64
	Distinct, Resident            int64
	Bypassed                      int64 // requests answered with FlagBypass
	BypassedNow                   bool  // current governor state
	R                             float64
	C, O                          time.Duration
}

// Stats fetches the segment's live server-side statistics.
func (s *RemoteSegment) Stats() (RemoteStats, error) {
	resp, err := s.c.call(&wire.Frame{Op: wire.OpStats, Seg: s.id})
	if err != nil {
		return RemoteStats{}, err
	}
	if len(resp.Vals) < wire.StatsLen {
		return RemoteStats{}, fmt.Errorf("stats: short response (%d vals)", len(resp.Vals))
	}
	v := resp.Vals
	return RemoteStats{
		Probes:      int64(v[wire.StatsProbes]),
		Hits:        int64(v[wire.StatsHits]),
		Misses:      int64(v[wire.StatsMisses]),
		Records:     int64(v[wire.StatsRecords]),
		Distinct:    int64(v[wire.StatsDistinct]),
		Resident:    int64(v[wire.StatsResident]),
		Bypassed:    int64(v[wire.StatsBypassed]),
		BypassedNow: v[wire.StatsState] != 0,
		R:           float64(v[wire.StatsR]) / 1e6,
		C:           time.Duration(v[wire.StatsC]),
		O:           time.Duration(v[wire.StatsO]),
	}, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// clientConn is one pooled connection: a writer goroutine batching
// pipelined requests, a reader goroutine matching responses back to
// waiters by sequence number.
type clientConn struct {
	nc      net.Conn
	writeCh chan *wire.Frame
	// done is closed by close() and unblocks roundTrip senders parked on
	// writeCh: once writeLoop has exited there is no receiver, and a
	// sender that passed the cc.err check before the close would
	// otherwise block forever on a full writeCh.
	done chan struct{}

	mu      sync.Mutex
	pending map[uint64]chan wire.Frame
	err     error
	seq     uint64

	inflight chan struct{} // capacity = MaxInflight
}

// ParseAddr splits a crcserve address into the network and address
// arguments of net.Dial/net.Listen: "unix://<path>" selects a
// unix-domain socket at <path>, anything else is TCP.
func ParseAddr(addr string) (network, address string) {
	if path, ok := strings.CutPrefix(addr, "unix://"); ok {
		return "unix", path
	}
	return "tcp", addr
}

func dialConn(cfg ClientConfig) (*clientConn, error) {
	network, address := ParseAddr(cfg.Addr)
	nc, err := net.DialTimeout(network, address, cfg.dialTimeout())
	if err != nil {
		return nil, err
	}
	cc := &clientConn{
		nc:       nc,
		writeCh:  make(chan *wire.Frame, cfg.maxInflight()),
		done:     make(chan struct{}),
		pending:  map[uint64]chan wire.Frame{},
		inflight: make(chan struct{}, cfg.maxInflight()),
	}
	go cc.writeLoop()
	go cc.readLoop()
	return cc, nil
}

// roundTrip pipelines one request and blocks for its response.
func (cc *clientConn) roundTrip(req *wire.Frame) (wire.Frame, error) {
	cc.inflight <- struct{}{}
	defer func() { <-cc.inflight }()

	ch := make(chan wire.Frame, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return wire.Frame{}, err
	}
	cc.seq++
	req.Seq = cc.seq
	cc.pending[req.Seq] = ch
	cc.mu.Unlock()

	// The send races connection teardown: writeLoop exits on a write
	// error without draining writeCh, so a bare send here could park
	// forever with no receiver. close() closes cc.done, failing the send
	// fast with the stored teardown error.
	select {
	case cc.writeCh <- req:
	case <-cc.done:
		cc.mu.Lock()
		delete(cc.pending, req.Seq)
		err := cc.err
		cc.mu.Unlock()
		if err == nil {
			err = errors.New("compreuse: connection closed")
		}
		return wire.Frame{}, err
	}
	resp, ok := <-ch
	if !ok {
		cc.mu.Lock()
		err := cc.err
		cc.mu.Unlock()
		if err == nil {
			err = errors.New("compreuse: connection closed")
		}
		return wire.Frame{}, err
	}
	return resp, nil
}

// writeLoop encodes queued requests, coalescing everything already
// queued into one flush — the client half of pipelining.
func (cc *clientConn) writeLoop() {
	bw := bufio.NewWriterSize(cc.nc, 64<<10)
	w := wire.NewWriter(bw)
	for f := range cc.writeCh {
		if err := w.Write(f); err != nil {
			cc.close(err)
			return
		}
		for more := true; more; {
			select {
			case f2 := <-cc.writeCh:
				if err := w.Write(f2); err != nil {
					cc.close(err)
					return
				}
			default:
				more = false
			}
		}
		if err := bw.Flush(); err != nil {
			cc.close(err)
			return
		}
	}
}

// readLoop decodes responses and hands each to its waiter.
func (cc *clientConn) readLoop() {
	r := wire.NewReader(bufio.NewReaderSize(cc.nc, 64<<10))
	for {
		var f wire.Frame
		if err := r.Next(&f); err != nil {
			cc.close(err)
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[f.Seq]
		delete(cc.pending, f.Seq)
		cc.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// close fails every pending and future call with err: the stored error
// gates new round trips, closing each pending channel fails the waiters,
// and closing done unparks any sender blocked on writeCh.
func (cc *clientConn) close(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
		cc.nc.Close()
		close(cc.done)
		for seq, ch := range cc.pending {
			close(ch)
			delete(cc.pending, seq)
		}
	}
	cc.mu.Unlock()
}
