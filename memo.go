package compreuse

import (
	"sync"

	"compreuse/internal/reusetab"
)

// This file is the standalone Go-facing reuse runtime: the same table
// design the transformed MiniC programs use (paper §3.1), packaged as a
// generic memoization helper so downstream Go code can apply the paper's
// technique directly. The cost–benefit intuition carries over: memoize
// functions whose computation dwarfs a hash probe and whose inputs repeat.

// MemoStats reports a memoized function's reuse behavior.
type MemoStats struct {
	// Calls is the number of invocations.
	Calls int64
	// Hits is the number served from the table.
	Hits int64
	// Distinct is the number of distinct inputs computed.
	Distinct int64
}

// HitRatio is Hits/Calls (0 when never called).
func (s MemoStats) HitRatio() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Calls)
}

// ReuseRate is the paper's R = 1 − N_ds/N.
func (s MemoStats) ReuseRate() float64 {
	if s.Calls == 0 {
		return 0
	}
	return 1 - float64(s.Distinct)/float64(s.Calls)
}

// Memo wraps a pure function of one comparable argument with an unbounded
// reuse table ("optimal" sizing in the paper's terms: the table holds
// every distinct input). The wrapper is safe for concurrent use.
func Memo[K comparable, V any](f func(K) V) (func(K) V, *MemoStats) {
	var (
		mu    sync.Mutex
		table = map[K]V{}
		stats = &MemoStats{}
	)
	return func(k K) V {
		mu.Lock()
		stats.Calls++
		if v, ok := table[k]; ok {
			stats.Hits++
			mu.Unlock()
			return v
		}
		mu.Unlock()
		v := f(k)
		mu.Lock()
		if _, ok := table[k]; !ok {
			table[k] = v
			stats.Distinct++
		}
		mu.Unlock()
		return v
	}, stats
}

// Memo2 memoizes a pure function of two comparable arguments.
func Memo2[A, B comparable, V any](f func(A, B) V) (func(A, B) V, *MemoStats) {
	type key struct {
		a A
		b B
	}
	g, stats := Memo(func(k key) V { return f(k.a, k.b) })
	return func(a A, b B) V { return g(key{a, b}) }, stats
}

// MemoTable is a bounded reuse table with the paper's replacement
// behaviors: direct addressing with replace-on-collision (§3.1), or a
// fully associative LRU buffer emulating the hardware proposals the paper
// compares against (Table 5). Keys and values are byte strings encoded by
// the caller (see reusetab's Append helpers via EncodeInt/EncodeFloat).
type MemoTable struct {
	mu  sync.Mutex
	tab *reusetab.Table
}

// MemoTableConfig sizes a MemoTable.
type MemoTableConfig struct {
	// Name labels the table.
	Name string
	// Entries is the table size; 0 means unbounded.
	Entries int
	// LRU selects associative LRU replacement instead of direct
	// addressing (only meaningful with Entries > 0).
	LRU bool
}

// NewMemoTable builds a single-segment reuse table.
func NewMemoTable(cfg MemoTableConfig) *MemoTable {
	return &MemoTable{
		tab: reusetab.New(reusetab.Config{
			Name:     cfg.Name,
			Segs:     1,
			KeyBytes: 8,
			OutWords: []int{1},
			OutBytes: []int{8},
			Entries:  cfg.Entries,
			LRU:      cfg.LRU,
		}),
	}
}

// Lookup probes the table; ok reports a hit.
func (m *MemoTable) Lookup(key []byte) (value uint64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	outs, hit := m.tab.Probe(0, key)
	if !hit {
		return 0, false
	}
	return outs[0], true
}

// Store records a computed value for key.
func (m *MemoTable) Store(key []byte, value uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tab.Record(0, key, []uint64{value})
}

// Stats returns the table's probe statistics.
func (m *MemoTable) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.tab.Stats(0)
	return MemoStats{Calls: st.Probes, Hits: st.Hits, Distinct: int64(m.tab.Distinct())}
}

// EncodeInt appends a 32-bit key component, as the transformed programs do.
func EncodeInt(key []byte, v int64) []byte { return reusetab.AppendInt(key, v) }

// EncodeFloat appends a 64-bit float key component.
func EncodeFloat(key []byte, v float64) []byte { return reusetab.AppendFloat(key, v) }
