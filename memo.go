package compreuse

import (
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"compreuse/internal/obs"
	"compreuse/internal/reusetab"
)

// Memoization metrics, live when observability is enabled (EnableMetrics /
// obs.Enable). The disabled path of a memoized call pays one atomic load.
// MemoTable traffic additionally feeds the reuse-table probe metrics
// (crc_probe_latency_ns, crc_key_bytes, ...) through its underlying
// sharded table.
var (
	mMemoCalls = obs.NewCounter("crc_memo_calls_total",
		"calls into Memo/Memo2-wrapped functions")
	mMemoHits = obs.NewCounter("crc_memo_hits_total",
		"memoized calls served without running the wrapped function")
	mMemoLatency = obs.NewHistogram("crc_memo_latency_ns",
		"memoized call latency in nanoseconds (hits and misses alike)", obs.LatencyBuckets)
)

// This file is the standalone Go-facing reuse runtime: the same table
// design the transformed MiniC programs use (paper §3.1), packaged as a
// generic memoization helper so downstream Go code can apply the paper's
// technique directly. The cost–benefit intuition carries over: memoize
// functions whose computation dwarfs a hash probe and whose inputs repeat.
//
// Unlike the VM-facing reusetab.Table (single-threaded, bit-for-bit
// faithful to the paper), this runtime is built for parallel callers: the
// memo map is striped across independently locked shards selected by a
// hash of the key, statistics are atomic, and concurrent calls with the
// same key are deduplicated (singleflight) so f runs once per distinct
// in-flight key instead of once per caller. The paper's profitability
// condition R·C − O > 0 (formula 3) is why this matters: a contended
// global lock inflates the lookup overhead O until no segment is worth
// memoizing, so the runtime keeps O flat as GOMAXPROCS grows.

// MemoStats reports a memoized function's reuse behavior. The fields are
// updated atomically by the wrapper; while the wrapper may still be
// running in other goroutines, read them through Snapshot rather than
// directly.
type MemoStats struct {
	// Calls is the number of invocations.
	Calls int64
	// Hits is the number served without running f: found in the table, or
	// joined onto another caller's in-flight computation of the same key.
	Hits int64
	// Distinct is the number of distinct inputs computed.
	Distinct int64
	// Evictions is the number of resident entries displaced by bounded
	// replacement (LRU or direct-addressed overwrite). Always 0 for the
	// unbounded Memo/Memo2 wrappers; meaningful for bounded MemoTables,
	// where LRU churn was previously invisible.
	Evictions int64
}

// Snapshot returns a copy of the counters, safe to read while the
// memoized function is being called concurrently. Each field is loaded
// atomically; Hits and Distinct are loaded before Calls so that — since
// every Hits/Distinct increment is preceded by its call's Calls increment
// and the counters only grow — the snapshot always satisfies
// Hits <= Calls and Distinct <= Calls, keeping HitRatio and ReuseRate in
// [0, 1].
func (s *MemoStats) Snapshot() MemoStats {
	hits := atomic.LoadInt64(&s.Hits)
	distinct := atomic.LoadInt64(&s.Distinct)
	evictions := atomic.LoadInt64(&s.Evictions)
	calls := atomic.LoadInt64(&s.Calls)
	return MemoStats{Calls: calls, Hits: hits, Distinct: distinct, Evictions: evictions}
}

// HitRatio is Hits/Calls (0 when never called).
func (s MemoStats) HitRatio() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Calls)
}

// ReuseRate is the paper's R = 1 − N_ds/N.
func (s MemoStats) ReuseRate() float64 {
	if s.Calls == 0 {
		return 0
	}
	return 1 - float64(s.Distinct)/float64(s.Calls)
}

// memoShardCount picks a power-of-two stripe count scaled to the
// machine: at least 8 so light contention still spreads, capped so tiny
// memo tables do not carry hundreds of empty maps.
func memoShardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n {
		s <<= 1
	}
	if s < 8 {
		s = 8
	}
	if s > 128 {
		s = 128
	}
	return s
}

// inflightCall is one singleflight computation: the leader closes done
// after storing val, and every waiter reads val afterwards.
type inflightCall[V any] struct {
	done chan struct{}
	val  V
}

// memoShard is one lock stripe of a memoized function's table, padded to
// a cache line so neighboring stripes do not false-share.
type memoShard[K comparable, V any] struct {
	mu       sync.RWMutex
	vals     map[K]V
	inflight map[K]*inflightCall[V]
	_        [24]byte
}

// Memoized is the handle behind Memo: the sharded singleflight reuse
// table plus its statistics, with the lifecycle operations — Reset in
// particular — that the bare closure returned by Memo cannot carry.
// Long-lived callers (servers whose key universe drifts, the remote
// tier's governor re-measuring a readmitted segment) construct one with
// NewMemoized and call Reset when the cached state should be dropped.
type Memoized[K comparable, V any] struct {
	f      func(K) V
	shards []memoShard[K, V]
	seed   maphash.Seed
	mask   uint64
	stats  MemoStats
}

// NewMemoized wraps a pure function of one comparable argument with an
// unbounded reuse table ("optimal" sizing in the paper's terms: the
// table holds every distinct input). The wrapper is safe for concurrent
// use: probes are striped over sharded locks, and concurrent callers
// with the same key share one computation of f (singleflight) — the
// duplicates count as hits, since they are served from another caller's
// work.
func NewMemoized[K comparable, V any](f func(K) V) *Memoized[K, V] {
	m := &Memoized[K, V]{
		f:      f,
		shards: make([]memoShard[K, V], memoShardCount()),
		seed:   maphash.MakeSeed(),
	}
	m.mask = uint64(len(m.shards) - 1)
	for i := range m.shards {
		m.shards[i].vals = map[K]V{}
		m.shards[i].inflight = map[K]*inflightCall[V]{}
	}
	return m
}

// call performs one memoized invocation; hit reports whether the value
// was served without running f in this goroutine.
func (m *Memoized[K, V]) call(k K) (v V, hit bool) {
	atomic.AddInt64(&m.stats.Calls, 1)
	sh := &m.shards[maphash.Comparable(m.seed, k)&m.mask]

	// Fast path: shared-lock probe.
	sh.mu.RLock()
	v, ok := sh.vals[k]
	sh.mu.RUnlock()
	if ok {
		atomic.AddInt64(&m.stats.Hits, 1)
		return v, true
	}

	// Slow path: re-probe under the write lock, then either join an
	// in-flight computation or become its leader.
	sh.mu.Lock()
	if v, ok := sh.vals[k]; ok {
		sh.mu.Unlock()
		atomic.AddInt64(&m.stats.Hits, 1)
		return v, true
	}
	if c, ok := sh.inflight[k]; ok {
		sh.mu.Unlock()
		<-c.done
		atomic.AddInt64(&m.stats.Hits, 1)
		return c.val, true
	}
	c := &inflightCall[V]{done: make(chan struct{})}
	sh.inflight[k] = c
	sh.mu.Unlock()

	c.val = m.f(k)

	sh.mu.Lock()
	sh.vals[k] = c.val
	delete(sh.inflight, k)
	sh.mu.Unlock()
	atomic.AddInt64(&m.stats.Distinct, 1)
	close(c.done)
	return c.val, false
}

// Call invokes the memoized function.
func (m *Memoized[K, V]) Call(k K) V {
	if !obs.On() {
		v, _ := m.call(k)
		return v
	}
	start := time.Now()
	v, hit := m.call(k)
	mMemoLatency.Observe(time.Since(start).Nanoseconds())
	mMemoCalls.Inc()
	if hit {
		mMemoHits.Inc()
	}
	return v
}

// Stats returns a consistent snapshot of the counters (see
// MemoStats.Snapshot).
func (m *Memoized[K, V]) Stats() MemoStats { return m.stats.Snapshot() }

// Reset drops every cached value and zeroes the statistics without
// reallocating the shard maps. It is safe to call concurrently with
// Call: each shard is cleared under its write lock, and computations in
// flight during the reset simply store into the freshly cleared shard
// when they finish. Counter zeroing is not atomic with the map clears,
// so snapshots taken while callers race a Reset may be momentarily
// inconsistent; they converge once the reset returns.
func (m *Memoized[K, V]) Reset() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		clear(sh.vals)
		sh.mu.Unlock()
	}
	atomic.StoreInt64(&m.stats.Calls, 0)
	atomic.StoreInt64(&m.stats.Hits, 0)
	atomic.StoreInt64(&m.stats.Distinct, 0)
	atomic.StoreInt64(&m.stats.Evictions, 0)
}

// Memo wraps f as NewMemoized does and returns the call closure plus a
// pointer to the live stats — the original convenience signature. Use
// NewMemoized directly when the caller also needs Reset.
func Memo[K comparable, V any](f func(K) V) (func(K) V, *MemoStats) {
	m := NewMemoized(f)
	return m.Call, &m.stats
}

// Memoized2 is the two-argument Memoized handle, built by NewMemoized2.
type Memoized2[A, B comparable, V any] struct {
	m *Memoized[pairKey[A, B], V]
}

type pairKey[A, B comparable] struct {
	a A
	b B
}

// NewMemoized2 memoizes a pure function of two comparable arguments,
// returning a handle with Call, Stats and Reset.
func NewMemoized2[A, B comparable, V any](f func(A, B) V) *Memoized2[A, B, V] {
	return &Memoized2[A, B, V]{m: NewMemoized(func(k pairKey[A, B]) V { return f(k.a, k.b) })}
}

// Call invokes the memoized function.
func (m *Memoized2[A, B, V]) Call(a A, b B) V { return m.m.Call(pairKey[A, B]{a, b}) }

// Stats returns a consistent snapshot of the counters.
func (m *Memoized2[A, B, V]) Stats() MemoStats { return m.m.Stats() }

// Reset drops every cached value and zeroes the statistics (see
// Memoized.Reset).
func (m *Memoized2[A, B, V]) Reset() { m.m.Reset() }

// Memo2 memoizes a pure function of two comparable arguments, returning
// the call closure plus a pointer to the live stats. Use NewMemoized2
// directly when the caller also needs Reset.
func Memo2[A, B comparable, V any](f func(A, B) V) (func(A, B) V, *MemoStats) {
	m := NewMemoized2(f)
	return m.Call, &m.m.stats
}

// MemoTable is a bounded reuse table with the paper's replacement
// behaviors: direct addressing with replace-on-collision (§3.1), or a
// fully associative LRU buffer emulating the hardware proposals the paper
// compares against (Table 5). Keys and values are byte strings encoded by
// the caller (see reusetab's Append helpers via EncodeInt/EncodeFloat).
// The table is safe for concurrent use; configure Shards > 1 to stripe
// the storage for parallel callers.
type MemoTable struct {
	tab *reusetab.Sharded
}

// MemoTableConfig sizes a MemoTable.
type MemoTableConfig struct {
	// Name labels the table.
	Name string
	// Entries is the table size; 0 means unbounded.
	Entries int
	// LRU selects associative LRU replacement instead of direct
	// addressing (only meaningful with Entries > 0).
	LRU bool
	// Shards stripes the table across independently locked shards
	// (rounded up to a power of two) so parallel callers rarely contend.
	// 0 or 1 keeps a single shard, which preserves the exact single-table
	// collision and eviction behavior of §3.1; higher counts split
	// Entries evenly across shards, keeping total capacity but
	// redistributing collisions.
	Shards int
}

// NewMemoTable builds a reuse table from cfg.
func NewMemoTable(cfg MemoTableConfig) *MemoTable {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	return &MemoTable{
		tab: reusetab.NewSharded(reusetab.Config{
			Name:     cfg.Name,
			Segs:     1,
			KeyBytes: 8,
			OutWords: []int{1},
			OutBytes: []int{8},
			Entries:  cfg.Entries,
			LRU:      cfg.LRU,
		}, shards),
	}
}

// Lookup probes the table; ok reports a hit. Safe for concurrent use.
// A hit allocates nothing: the stored word is read by value under the
// shard lock (reusetab.Sharded.ProbeWord).
func (m *MemoTable) Lookup(key []byte) (value uint64, ok bool) {
	return m.tab.ProbeWord(0, key)
}

// Store records a computed value for key. Safe for concurrent use. A
// re-store of a resident key allocates nothing — the table copies the
// word into its existing entry in place.
func (m *MemoTable) Store(key []byte, value uint64) {
	vals := [1]uint64{value}
	m.tab.Record(0, key, vals[:])
}

// Stats returns the table's probe statistics. The counters are atomic
// snapshots, so Stats never blocks probes and is race-free against
// concurrent Lookup/Store callers.
func (m *MemoTable) Stats() MemoStats {
	// Distinct is read before the probe counters: distinct-key increments
	// trail their probe's Probes increment, so this order keeps
	// Distinct <= Calls (and ReuseRate in [0, 1]) even mid-flight.
	distinct := int64(m.tab.Distinct())
	st := m.tab.Stats(0)
	return MemoStats{Calls: st.Probes, Hits: st.Hits, Distinct: distinct, Evictions: st.Evictions}
}

// Reset empties the table and zeroes its statistics without
// reallocating (see reusetab.Sharded.Reset for the concurrency
// contract).
func (m *MemoTable) Reset() { m.tab.Reset() }

// Resident reports the number of entries currently stored in the table.
func (m *MemoTable) Resident() int { return m.tab.Resident() }

// Shards reports the table's lock-stripe count.
func (m *MemoTable) Shards() int { return m.tab.Shards() }

// EncodeInt appends a 32-bit key component, as the transformed programs do.
func EncodeInt(key []byte, v int64) []byte { return reusetab.AppendInt(key, v) }

// EncodeFloat appends a 64-bit float key component.
func EncodeFloat(key []byte, v float64) []byte { return reusetab.AppendFloat(key, v) }

// KeyBuf is a reusable scratch buffer for composing byte-string keys for
// MemoTable and TieredMemo. Building the key with EncodeInt/EncodeFloat
// on a fresh slice allocates on every call; a KeyBuf amortizes that to
// zero once its buffer has grown to the widest key it has seen, so a
// warm lookup — encode key, probe, hit — allocates nothing. A KeyBuf is
// not safe for concurrent use; give each goroutine its own (they are
// cheap: one slice header).
type KeyBuf struct {
	buf []byte
}

// Reset empties the buffer, keeping its capacity, and returns the KeyBuf
// for chaining: kb.Reset().Int(a).Int(b).Bytes().
func (k *KeyBuf) Reset() *KeyBuf {
	k.buf = k.buf[:0]
	return k
}

// Int appends a 32-bit key component.
func (k *KeyBuf) Int(v int64) *KeyBuf {
	k.buf = reusetab.AppendInt(k.buf, v)
	return k
}

// Float appends a 64-bit float key component.
func (k *KeyBuf) Float(v float64) *KeyBuf {
	k.buf = reusetab.AppendFloat(k.buf, v)
	return k
}

// Bytes returns the composed key. The slice aliases the scratch buffer:
// it is valid until the next Reset, and the tables it is passed to copy
// it rather than retain it.
func (k *KeyBuf) Bytes() []byte { return k.buf }
