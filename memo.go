package compreuse

import (
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"compreuse/internal/obs"
	"compreuse/internal/reusetab"
)

// Memoization metrics, live when observability is enabled (EnableMetrics /
// obs.Enable). The disabled path of a memoized call pays one atomic load.
// MemoTable traffic additionally feeds the reuse-table probe metrics
// (crc_probe_latency_ns, crc_key_bytes, ...) through its underlying
// sharded table.
var (
	mMemoCalls = obs.NewCounter("crc_memo_calls_total",
		"calls into Memo/Memo2-wrapped functions")
	mMemoHits = obs.NewCounter("crc_memo_hits_total",
		"memoized calls served without running the wrapped function")
	mMemoLatency = obs.NewHistogram("crc_memo_latency_ns",
		"memoized call latency in nanoseconds (hits and misses alike)", obs.LatencyBuckets)
)

// This file is the standalone Go-facing reuse runtime: the same table
// design the transformed MiniC programs use (paper §3.1), packaged as a
// generic memoization helper so downstream Go code can apply the paper's
// technique directly. The cost–benefit intuition carries over: memoize
// functions whose computation dwarfs a hash probe and whose inputs repeat.
//
// Unlike the VM-facing reusetab.Table (single-threaded, bit-for-bit
// faithful to the paper), this runtime is built for parallel callers: the
// memo map is striped across independently locked shards selected by a
// hash of the key, statistics are atomic, and concurrent calls with the
// same key are deduplicated (singleflight) so f runs once per distinct
// in-flight key instead of once per caller. The paper's profitability
// condition R·C − O > 0 (formula 3) is why this matters: a contended
// global lock inflates the lookup overhead O until no segment is worth
// memoizing, so the runtime keeps O flat as GOMAXPROCS grows.

// MemoStats reports a memoized function's reuse behavior. The fields are
// updated atomically by the wrapper; while the wrapper may still be
// running in other goroutines, read them through Snapshot rather than
// directly.
type MemoStats struct {
	// Calls is the number of invocations.
	Calls int64
	// Hits is the number served without running f: found in the table, or
	// joined onto another caller's in-flight computation of the same key.
	Hits int64
	// Distinct is the number of distinct inputs computed.
	Distinct int64
	// Evictions is the number of resident entries displaced by bounded
	// replacement (LRU or direct-addressed overwrite). Always 0 for the
	// unbounded Memo/Memo2 wrappers; meaningful for bounded MemoTables,
	// where LRU churn was previously invisible.
	Evictions int64
}

// Snapshot returns a copy of the counters, safe to read while the
// memoized function is being called concurrently. Each field is loaded
// atomically; Hits and Distinct are loaded before Calls so that — since
// every Hits/Distinct increment is preceded by its call's Calls increment
// and the counters only grow — the snapshot always satisfies
// Hits <= Calls and Distinct <= Calls, keeping HitRatio and ReuseRate in
// [0, 1].
func (s *MemoStats) Snapshot() MemoStats {
	hits := atomic.LoadInt64(&s.Hits)
	distinct := atomic.LoadInt64(&s.Distinct)
	evictions := atomic.LoadInt64(&s.Evictions)
	calls := atomic.LoadInt64(&s.Calls)
	return MemoStats{Calls: calls, Hits: hits, Distinct: distinct, Evictions: evictions}
}

// HitRatio is Hits/Calls (0 when never called).
func (s MemoStats) HitRatio() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Calls)
}

// ReuseRate is the paper's R = 1 − N_ds/N.
func (s MemoStats) ReuseRate() float64 {
	if s.Calls == 0 {
		return 0
	}
	return 1 - float64(s.Distinct)/float64(s.Calls)
}

// memoShardCount picks a power-of-two stripe count scaled to the
// machine: at least 8 so light contention still spreads, capped so tiny
// memo tables do not carry hundreds of empty maps.
func memoShardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n {
		s <<= 1
	}
	if s < 8 {
		s = 8
	}
	if s > 128 {
		s = 128
	}
	return s
}

// inflightCall is one singleflight computation: the leader closes done
// after storing val, and every waiter reads val afterwards.
type inflightCall[V any] struct {
	done chan struct{}
	val  V
}

// memoShard is one lock stripe of a memoized function's table, padded to
// a cache line so neighboring stripes do not false-share.
type memoShard[K comparable, V any] struct {
	mu       sync.RWMutex
	vals     map[K]V
	inflight map[K]*inflightCall[V]
	_        [24]byte
}

// Memo wraps a pure function of one comparable argument with an unbounded
// reuse table ("optimal" sizing in the paper's terms: the table holds
// every distinct input). The wrapper is safe for concurrent use: probes
// are striped over sharded locks, and concurrent callers with the same
// key share one computation of f (singleflight) — the duplicates count as
// hits, since they are served from another caller's work. Read the
// returned stats with Snapshot while goroutines may still be calling the
// wrapper.
func Memo[K comparable, V any](f func(K) V) (func(K) V, *MemoStats) {
	shards := make([]memoShard[K, V], memoShardCount())
	for i := range shards {
		shards[i].vals = map[K]V{}
		shards[i].inflight = map[K]*inflightCall[V]{}
	}
	seed := maphash.MakeSeed()
	mask := uint64(len(shards) - 1)
	stats := &MemoStats{}
	// call performs one memoized invocation; hit reports whether the value
	// was served without running f in this goroutine.
	call := func(k K) (v V, hit bool) {
		atomic.AddInt64(&stats.Calls, 1)
		sh := &shards[maphash.Comparable(seed, k)&mask]

		// Fast path: shared-lock probe.
		sh.mu.RLock()
		v, ok := sh.vals[k]
		sh.mu.RUnlock()
		if ok {
			atomic.AddInt64(&stats.Hits, 1)
			return v, true
		}

		// Slow path: re-probe under the write lock, then either join an
		// in-flight computation or become its leader.
		sh.mu.Lock()
		if v, ok := sh.vals[k]; ok {
			sh.mu.Unlock()
			atomic.AddInt64(&stats.Hits, 1)
			return v, true
		}
		if c, ok := sh.inflight[k]; ok {
			sh.mu.Unlock()
			<-c.done
			atomic.AddInt64(&stats.Hits, 1)
			return c.val, true
		}
		c := &inflightCall[V]{done: make(chan struct{})}
		sh.inflight[k] = c
		sh.mu.Unlock()

		c.val = f(k)

		sh.mu.Lock()
		sh.vals[k] = c.val
		delete(sh.inflight, k)
		sh.mu.Unlock()
		atomic.AddInt64(&stats.Distinct, 1)
		close(c.done)
		return c.val, false
	}
	return func(k K) V {
		if !obs.On() {
			v, _ := call(k)
			return v
		}
		start := time.Now()
		v, hit := call(k)
		mMemoLatency.Observe(time.Since(start).Nanoseconds())
		mMemoCalls.Inc()
		if hit {
			mMemoHits.Inc()
		}
		return v
	}, stats
}

// Memo2 memoizes a pure function of two comparable arguments.
func Memo2[A, B comparable, V any](f func(A, B) V) (func(A, B) V, *MemoStats) {
	type key struct {
		a A
		b B
	}
	g, stats := Memo(func(k key) V { return f(k.a, k.b) })
	return func(a A, b B) V { return g(key{a, b}) }, stats
}

// MemoTable is a bounded reuse table with the paper's replacement
// behaviors: direct addressing with replace-on-collision (§3.1), or a
// fully associative LRU buffer emulating the hardware proposals the paper
// compares against (Table 5). Keys and values are byte strings encoded by
// the caller (see reusetab's Append helpers via EncodeInt/EncodeFloat).
// The table is safe for concurrent use; configure Shards > 1 to stripe
// the storage for parallel callers.
type MemoTable struct {
	tab *reusetab.Sharded
}

// MemoTableConfig sizes a MemoTable.
type MemoTableConfig struct {
	// Name labels the table.
	Name string
	// Entries is the table size; 0 means unbounded.
	Entries int
	// LRU selects associative LRU replacement instead of direct
	// addressing (only meaningful with Entries > 0).
	LRU bool
	// Shards stripes the table across independently locked shards
	// (rounded up to a power of two) so parallel callers rarely contend.
	// 0 or 1 keeps a single shard, which preserves the exact single-table
	// collision and eviction behavior of §3.1; higher counts split
	// Entries evenly across shards, keeping total capacity but
	// redistributing collisions.
	Shards int
}

// NewMemoTable builds a reuse table from cfg.
func NewMemoTable(cfg MemoTableConfig) *MemoTable {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	return &MemoTable{
		tab: reusetab.NewSharded(reusetab.Config{
			Name:     cfg.Name,
			Segs:     1,
			KeyBytes: 8,
			OutWords: []int{1},
			OutBytes: []int{8},
			Entries:  cfg.Entries,
			LRU:      cfg.LRU,
		}, shards),
	}
}

// Lookup probes the table; ok reports a hit. Safe for concurrent use.
func (m *MemoTable) Lookup(key []byte) (value uint64, ok bool) {
	outs, hit := m.tab.Probe(0, key)
	if !hit {
		return 0, false
	}
	return outs[0], true
}

// Store records a computed value for key. Safe for concurrent use.
func (m *MemoTable) Store(key []byte, value uint64) {
	m.tab.Record(0, key, []uint64{value})
}

// Stats returns the table's probe statistics. The counters are atomic
// snapshots, so Stats never blocks probes and is race-free against
// concurrent Lookup/Store callers.
func (m *MemoTable) Stats() MemoStats {
	// Distinct is read before the probe counters: distinct-key increments
	// trail their probe's Probes increment, so this order keeps
	// Distinct <= Calls (and ReuseRate in [0, 1]) even mid-flight.
	distinct := int64(m.tab.Distinct())
	st := m.tab.Stats(0)
	return MemoStats{Calls: st.Probes, Hits: st.Hits, Distinct: distinct, Evictions: st.Evictions}
}

// Resident reports the number of entries currently stored in the table.
func (m *MemoTable) Resident() int { return m.tab.Resident() }

// Shards reports the table's lock-stripe count.
func (m *MemoTable) Shards() int { return m.tab.Shards() }

// EncodeInt appends a 32-bit key component, as the transformed programs do.
func EncodeInt(key []byte, v int64) []byte { return reusetab.AppendInt(key, v) }

// EncodeFloat appends a 64-bit float key component.
func EncodeFloat(key []byte, v float64) []byte { return reusetab.AppendFloat(key, v) }
